"""Hierarchical tracing: spans over every observable unit of work.

A :class:`Span` is one timed, attributed unit of work — a pipeline
stage, a brick characterization batch, a parallel task group, a cache
probe, a sweep point, a yield-analysis phase, a die measurement.  The
:class:`Tracer` maintains the open-span stack, assigns deterministic
sequential ids (parents always precede children), and retains every
closed span for export.

Determinism is a design invariant, not an accident: span ids are
allocated in open order, which is a pure function of the control flow,
and the *only* nondeterministic fields of a span are its two wall-clock
fields (``t_start_s``, ``dur_s``).  Stripping those two fields from an
exported trace therefore yields a byte-identical artifact across runs
at the same seed — the property the CI traced-flow job diffs.

Closed spans are also delivered to the session event sink as
:class:`SpanEvent` records, the same protocol that carries
:class:`~repro.session.StageEvent` and :class:`~repro.session.FaultEvent`,
so a :class:`~repro.session.RecordingSink` sees the full interleaved
stream without any new plumbing.

Traces cross process boundaries through a :class:`TraceContext` — a
tiny serializable ``(trace_id, parent ref)`` pair a client puts on the
wire, a server adopts as the remote parent of its request-root spans,
and the worker pool threads into its tasks.  Each participating tracer
names itself with a ``source`` (``client``/``server``/``worker``); the
``source:span_id`` ref is what makes parent links unambiguous once
several processes' traces are stitched into one tree
(:func:`repro.obs.export.stitch_traces`).
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, \
    Sequence, Tuple

#: Span kinds used across the codebase (informal; any string works).
KIND_STAGE = "stage"
KIND_BATCH = "batch"
KIND_CACHE = "cache"
KIND_TASK_GROUP = "task_group"
KIND_SWEEP = "sweep"
KIND_SWEEP_POINT = "sweep_point"
KIND_PHASE = "phase"
KIND_FLOW = "flow"
KIND_DIE = "die"
KIND_CORNER = "corner"
KIND_COMMAND = "command"
KIND_REQUEST = "request"
KIND_TASK = "task"


def mint_trace_id(*parts: Any) -> str:
    """A deterministic 16-hex-char trace id from ``parts``.

    Determinism is deliberate: the same client issuing the same request
    sequence mints the same trace ids, so two runs of the CI stitch job
    diff byte-identical once timing is stripped.
    """
    text = ":".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace linkage: one trace id, one parent ref.

    ``parent`` is a global span reference ``source:span_id`` (e.g.
    ``client:3``) naming the span on the *sending* side that the
    receiving side's root spans should hang under.  The dict form is
    what travels in an NDJSON frame or a pickled worker task.
    """

    trace_id: str
    parent: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "parent": self.parent}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        """Validate a wire dict into a context (``ValueError`` on any
        malformed field, so a server can reject it as a bad request)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"trace context must be an object, got "
                f"{type(data).__name__}")
        trace_id = data.get("trace_id")
        parent = data.get("parent")
        if not isinstance(trace_id, str) or not trace_id:
            raise ValueError(
                f"trace_id must be a non-empty string, got {trace_id!r}")
        if not isinstance(parent, str) or not parent:
            raise ValueError(
                f"parent must be a non-empty span ref, got {parent!r}")
        return cls(trace_id=trace_id, parent=parent)


@dataclass
class Span:
    """One unit of work in the trace tree.

    ``span_id`` and ``parent_id`` are deterministic small integers
    (allocation order); ``t_start_s`` and ``dur_s`` are the *only*
    wall-clock-bearing fields — attributes must never carry timings so
    that timing-stripped traces diff byte-identically.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str = "span"
    attrs: Dict[str, Any] = field(default_factory=dict)
    t_start_s: float = 0.0
    dur_s: Optional[float] = None
    ok: bool = True
    error: Optional[str] = None
    #: Cross-process linkage, set only on spans that root an adopted
    #: trace: the trace id this span belongs to and the remote parent
    #: ref (``source:span_id``) it hangs under once stitched.
    trace_id: Optional[str] = None
    remote_parent: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self.dur_s is not None


@dataclass(frozen=True)
class SpanEvent:
    """Sink-protocol record for one *closed* span.

    Mirrors the span's identity fields so sinks can reconstruct the
    tree; like :class:`Span`, only ``t_start_s``/``dur_s`` carry wall
    clocks.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    attrs: Dict[str, Any]
    t_start_s: float
    dur_s: float
    ok: bool = True
    error: Optional[str] = None


class Tracer:
    """Open/close spans on a stack; retain every closed span.

    One tracer serves one run (a CLI invocation, a test, a notebook
    cell); sessions derived from one another share it, so per-die or
    per-corner children nest their spans under the parent's open span.
    Not thread-safe by design: all in-process orchestration here is
    single-threaded (parallelism lives in worker *processes*, which do
    not trace).
    """

    def __init__(self, sink: Optional[Callable[[Any], None]] = None,
                 source: str = "",
                 trace_id: Optional[str] = None) -> None:
        self.sink = sink
        self.source = source
        self.trace_id = trace_id
        self.remote_parent: Optional[str] = None
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        # Guards id allocation during graft(): per-request and worker
        # tracers are single-threaded, but a daemon tracer absorbs
        # completed request traces from several compute threads.
        self._graft_lock = threading.Lock()

    # --- cross-process linkage -------------------------------------------

    def adopt(self, ctx: TraceContext) -> None:
        """Join a remote trace: root spans opened after this carry the
        context's trace id and hang under its parent ref when
        stitched."""
        self.trace_id = ctx.trace_id
        self.remote_parent = ctx.parent

    def ref(self, span: Span) -> str:
        """The global ``source:span_id`` reference for ``span``."""
        return f"{self.source or 'local'}:{span.span_id}"

    def task_context(self, span: Span) -> TraceContext:
        """The context a task shipped to another process should adopt,
        parenting its spans under ``span``.  Without an adopted or
        explicit trace id, one is minted deterministically from this
        tracer's identity — and stamped onto ``span`` itself, so the
        originating span carries the same trace id as every remote
        span that adopted its context."""
        trace_id = self.trace_id or mint_trace_id(
            self.source or "local", span.span_id)
        if span.trace_id is None:
            span.trace_id = trace_id
        return TraceContext(trace_id=trace_id, parent=self.ref(span))

    # --- core span lifecycle ---------------------------------------------

    def open(self, name: str, kind: str = "span",
             **attrs: Any) -> Span:
        """Open a child of the innermost open span (or a root)."""
        parent_id = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name, kind=kind, attrs=dict(attrs),
            t_start_s=time.perf_counter() - self._epoch,
            trace_id=self.trace_id if parent_id is None else None,
            remote_parent=(self.remote_parent if parent_id is None
                           else None))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        return span

    def close(self, span: Span, ok: bool = True,
              error: Optional[str] = None) -> Span:
        """Close ``span``, stamping its duration and emitting the event.

        Closes any forgotten inner spans first so the stack always
        unwinds to a consistent tree even through exceptions.
        """
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.dur_s = (time.perf_counter() - self._epoch
                      - span.t_start_s)
        span.ok = ok
        span.error = error
        if self.sink is not None:
            self.sink(SpanEvent(
                span_id=span.span_id, parent_id=span.parent_id,
                name=span.name, kind=span.kind, attrs=dict(span.attrs),
                t_start_s=span.t_start_s, dur_s=span.dur_s,
                ok=span.ok, error=span.error))
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("sta", kind="stage") as s: ...``

        The span closes on exit; an escaping exception marks it
        ``ok=False`` with the error text and re-raises.
        """
        opened = self.open(name, kind=kind, **attrs)
        try:
            yield opened
        except BaseException as exc:
            self.close(opened, ok=False,
                       error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.close(opened)

    # --- queries ----------------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def children(self, span_id: Optional[int]) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def validate(self) -> None:
        """Raise ``ValueError`` unless the span list forms a valid tree
        (unique ids, every parent id exists, every span closed)."""
        ids = [span.span_id for span in self.spans]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate span ids in trace")
        known = set(ids)
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in known:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) references "
                    f"unknown parent {span.parent_id}")
            if not span.closed:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) never closed")

    # --- grafting ---------------------------------------------------------

    def graft(self, spans: Sequence[Span],
              request_id: Optional[str] = None,
              under: Optional[int] = None,
              keep_remote: bool = True) -> List[Span]:
        """Absorb closed spans from another tracer into this one.

        Span ids are re-allocated (preserving the subtree topology) so
        grafted spans slot into this tracer's deterministic numbering;
        roots of the grafted forest are attached under ``under`` (or
        the innermost open span, or stay roots).  ``request_id`` tags
        every grafted span's attrs, which is how a busy daemon's trace
        stays filterable per request.

        ``keep_remote`` governs the roots' cross-process linkage: a
        daemon absorbing a finished request trace keeps the roots'
        ``trace_id``/``remote_parent`` (they point at the *client*);
        a caller absorbing its own worker-pool spans passes ``False``
        because the local ``parent_id`` now carries the link and the
        remote ref would dangle after renumbering.  Thread-safe:
        several compute threads may graft concurrently.
        """
        ordered = sorted(spans, key=lambda s: s.span_id)
        with self._graft_lock:
            attach = under if under is not None else (
                self._stack[-1] if self._stack else None)
            mapping: Dict[int, int] = {}
            grafted: List[Span] = []
            for span in ordered:
                new_id = self._next_id
                self._next_id += 1
                mapping[span.span_id] = new_id
                attrs = dict(span.attrs)
                if request_id is not None:
                    attrs.setdefault("request_id", request_id)
                is_root = span.parent_id is None
                grafted.append(replace(
                    span, span_id=new_id,
                    parent_id=(mapping.get(span.parent_id, attach)
                               if not is_root else attach),
                    attrs=attrs,
                    trace_id=(span.trace_id
                              if keep_remote and is_root else None),
                    remote_parent=(span.remote_parent
                                   if keep_remote and is_root
                                   else None)))
            self.spans.extend(grafted)
        return grafted


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str, kind: str = "span",
               **attrs: Any) -> Iterator[Optional[Span]]:
    """``tracer.span(...)`` when a tracer is present, else a no-op.

    The pattern every instrumented layer uses so tracing stays strictly
    opt-in: un-traced runs execute the exact same code with a ``None``
    span and zero overhead beyond one ``if``.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, kind=kind, **attrs) as opened:
        yield opened


def aggregate_spans(spans: List[Span], kind: Optional[str] = None
                    ) -> List[Tuple[str, int, float]]:
    """``(name, calls, total_seconds)`` rows aggregated by span name.

    Rows come back in first-seen order (deterministic given a
    deterministic trace).  ``kind`` filters to one span kind.
    """
    order: List[str] = []
    calls: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for span in spans:
        if kind is not None and span.kind != kind:
            continue
        if span.name not in calls:
            order.append(span.name)
            calls[span.name] = 0
            totals[span.name] = 0.0
        calls[span.name] += 1
        totals[span.name] += span.dur_s or 0.0
    return [(name, calls[name], totals[name]) for name in order]

"""Hierarchical tracing: spans over every observable unit of work.

A :class:`Span` is one timed, attributed unit of work — a pipeline
stage, a brick characterization batch, a parallel task group, a cache
probe, a sweep point, a yield-analysis phase, a die measurement.  The
:class:`Tracer` maintains the open-span stack, assigns deterministic
sequential ids (parents always precede children), and retains every
closed span for export.

Determinism is a design invariant, not an accident: span ids are
allocated in open order, which is a pure function of the control flow,
and the *only* nondeterministic fields of a span are its two wall-clock
fields (``t_start_s``, ``dur_s``).  Stripping those two fields from an
exported trace therefore yields a byte-identical artifact across runs
at the same seed — the property the CI traced-flow job diffs.

Closed spans are also delivered to the session event sink as
:class:`SpanEvent` records, the same protocol that carries
:class:`~repro.session.StageEvent` and :class:`~repro.session.FaultEvent`,
so a :class:`~repro.session.RecordingSink` sees the full interleaved
stream without any new plumbing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Span kinds used across the codebase (informal; any string works).
KIND_STAGE = "stage"
KIND_BATCH = "batch"
KIND_CACHE = "cache"
KIND_TASK_GROUP = "task_group"
KIND_SWEEP = "sweep"
KIND_SWEEP_POINT = "sweep_point"
KIND_PHASE = "phase"
KIND_FLOW = "flow"
KIND_DIE = "die"
KIND_CORNER = "corner"
KIND_COMMAND = "command"


@dataclass
class Span:
    """One unit of work in the trace tree.

    ``span_id`` and ``parent_id`` are deterministic small integers
    (allocation order); ``t_start_s`` and ``dur_s`` are the *only*
    wall-clock-bearing fields — attributes must never carry timings so
    that timing-stripped traces diff byte-identically.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str = "span"
    attrs: Dict[str, Any] = field(default_factory=dict)
    t_start_s: float = 0.0
    dur_s: Optional[float] = None
    ok: bool = True
    error: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self.dur_s is not None


@dataclass(frozen=True)
class SpanEvent:
    """Sink-protocol record for one *closed* span.

    Mirrors the span's identity fields so sinks can reconstruct the
    tree; like :class:`Span`, only ``t_start_s``/``dur_s`` carry wall
    clocks.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    attrs: Dict[str, Any]
    t_start_s: float
    dur_s: float
    ok: bool = True
    error: Optional[str] = None


class Tracer:
    """Open/close spans on a stack; retain every closed span.

    One tracer serves one run (a CLI invocation, a test, a notebook
    cell); sessions derived from one another share it, so per-die or
    per-corner children nest their spans under the parent's open span.
    Not thread-safe by design: all in-process orchestration here is
    single-threaded (parallelism lives in worker *processes*, which do
    not trace).
    """

    def __init__(self, sink: Optional[Callable[[Any], None]] = None
                 ) -> None:
        self.sink = sink
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    # --- core span lifecycle ---------------------------------------------

    def open(self, name: str, kind: str = "span",
             **attrs: Any) -> Span:
        """Open a child of the innermost open span (or a root)."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name, kind=kind, attrs=dict(attrs),
            t_start_s=time.perf_counter() - self._epoch)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        return span

    def close(self, span: Span, ok: bool = True,
              error: Optional[str] = None) -> Span:
        """Close ``span``, stamping its duration and emitting the event.

        Closes any forgotten inner spans first so the stack always
        unwinds to a consistent tree even through exceptions.
        """
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.dur_s = (time.perf_counter() - self._epoch
                      - span.t_start_s)
        span.ok = ok
        span.error = error
        if self.sink is not None:
            self.sink(SpanEvent(
                span_id=span.span_id, parent_id=span.parent_id,
                name=span.name, kind=span.kind, attrs=dict(span.attrs),
                t_start_s=span.t_start_s, dur_s=span.dur_s,
                ok=span.ok, error=span.error))
        return span

    @contextmanager
    def span(self, name: str, kind: str = "span",
             **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("sta", kind="stage") as s: ...``

        The span closes on exit; an escaping exception marks it
        ``ok=False`` with the error text and re-raises.
        """
        opened = self.open(name, kind=kind, **attrs)
        try:
            yield opened
        except BaseException as exc:
            self.close(opened, ok=False,
                       error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.close(opened)

    # --- queries ----------------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def children(self, span_id: Optional[int]) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def validate(self) -> None:
        """Raise ``ValueError`` unless the span list forms a valid tree
        (unique ids, every parent id exists, every span closed)."""
        ids = [span.span_id for span in self.spans]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate span ids in trace")
        known = set(ids)
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in known:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) references "
                    f"unknown parent {span.parent_id}")
            if not span.closed:
                raise ValueError(
                    f"span {span.span_id} ({span.name!r}) never closed")


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str, kind: str = "span",
               **attrs: Any) -> Iterator[Optional[Span]]:
    """``tracer.span(...)`` when a tracer is present, else a no-op.

    The pattern every instrumented layer uses so tracing stays strictly
    opt-in: un-traced runs execute the exact same code with a ``None``
    span and zero overhead beyond one ``if``.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, kind=kind, **attrs) as opened:
        yield opened


def aggregate_spans(spans: List[Span], kind: Optional[str] = None
                    ) -> List[Tuple[str, int, float]]:
    """``(name, calls, total_seconds)`` rows aggregated by span name.

    Rows come back in first-seen order (deterministic given a
    deterministic trace).  ``kind`` filters to one span kind.
    """
    order: List[str] = []
    calls: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for span in spans:
        if kind is not None and span.kind != kind:
            continue
        if span.name not in calls:
            order.append(span.name)
            calls[span.name] = 0
            totals[span.name] = 0.0
        calls[span.name] += 1
        totals[span.name] += span.dur_s or 0.0
    return [(name, calls[name], totals[name]) for name in order]

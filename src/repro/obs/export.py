"""Trace exporters: JSONL span logs and Chrome trace-event JSON.

The JSONL format is the repo's durable trace artifact: one JSON object
per line, ``{"type": "span", ...}`` records in span-id order followed
by an optional ``{"type": "metrics", ...}`` record carrying the run's
metrics snapshot.  Keys are sorted and floats emitted by ``json`` so a
record is a pure function of its values — combined with the tracer's
deterministic ids, two runs at the same seed differ *only* in the
``t_start_s``/``dur_s`` fields, which :func:`strip_timing` removes for
byte-identical CI diffs.

The Chrome trace-event export produces the ``traceEvents`` JSON that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly: complete events (``"ph": "X"``) with microsecond timestamps,
one row per span, span kinds as categories.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError
from .trace import Span

#: Fields that carry wall clocks — the only run-to-run nondeterminism.
TIMING_FIELDS = ("t_start_s", "dur_s")


def span_record(span: Span) -> Dict[str, Any]:
    """The JSONL dict for one closed span.

    The cross-process linkage fields (``trace_id``,
    ``remote_parent``) are emitted only when set — purely local
    traces keep their historical byte-exact shape.
    """
    record = {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "attrs": span.attrs,
        "t_start_s": span.t_start_s,
        "dur_s": span.dur_s if span.dur_s is not None else 0.0,
        "ok": span.ok,
        "error": span.error,
    }
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
    if span.remote_parent is not None:
        record["remote_parent"] = span.remote_parent
    return record


def _is_timing_gauge(name: str) -> bool:
    """Gauge names whose value is wall-clock-derived, by convention:
    the last dotted component is ``ns_*`` / ``*_ns`` / ``*_s`` (e.g.
    ``estimator.batch.ns_per_point``)."""
    leaf = name.rsplit(".", 1)[-1]
    return (leaf.startswith("ns_") or leaf.endswith("_ns")
            or leaf.endswith("_s"))


def strip_timing(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` with every wall-clock field removed.

    Span records lose :data:`TIMING_FIELDS`; a metrics record loses its
    histogram timing fields and timing-valued gauges (counts are kept —
    they are deterministic).
    """
    stripped = {key: value for key, value in record.items()
                if key not in TIMING_FIELDS}
    if record.get("type") == "metrics":
        metrics = stripped.get("metrics", {})
        histograms = metrics.get("histograms")
        timing_gauges = [name for name in metrics.get("gauges", {})
                         if _is_timing_gauge(name)]
        if histograms or timing_gauges:
            stripped = json.loads(json.dumps(stripped))  # deep copy
            for hist in stripped["metrics"].get("histograms",
                                                {}).values():
                for key in [k for k in hist if k.endswith("_s")]:
                    del hist[key]
            for name in timing_gauges:
                del stripped["metrics"]["gauges"][name]
    return stripped


def trace_lines(spans: Sequence[Span],
                metrics: Optional[Dict[str, Any]] = None,
                strip: bool = False,
                source: Optional[str] = None) -> List[str]:
    """The JSONL lines for a trace, in deterministic order.

    ``source`` (e.g. ``"client"``/``"server"``) prepends a
    ``trace_meta`` header record naming the process that produced the
    trace — :func:`stitch_traces` reads it back so merged traces keep
    their global ``source:span_id`` references without the caller
    re-stating which file came from where.
    """
    records: List[Dict[str, Any]] = []
    if source is not None:
        records.append({"type": "trace_meta", "source": source})
    records.extend(span_record(span) for span in
                   sorted(spans, key=lambda s: s.span_id))
    if metrics is not None:
        records.append({"type": "metrics", "metrics": metrics})
    if strip:
        records = [strip_timing(record) for record in records]
    return [json.dumps(record, sort_keys=True) for record in records]


def write_trace_jsonl(spans: Sequence[Span], path: str,
                      metrics: Optional[Dict[str, Any]] = None,
                      source: Optional[str] = None) -> str:
    """Write the JSONL span log (plus optional metrics record)."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_lines(spans, metrics=metrics, source=source):
            handle.write(line + "\n")
    return path


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into records, validating the span tree.

    Every span record must carry a unique ``span_id`` and reference an
    existing parent; violations raise :class:`~repro.errors.ReproError`
    so a truncated or hand-edited trace fails loudly.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{path}:{lineno}: invalid JSON: {exc}") from exc
    except OSError as exc:
        raise ReproError(f"cannot read trace {path!r}: {exc}") from exc
    ids = set()
    for record in records:
        if record.get("type") != "span":
            continue
        span_id = record.get("span_id")
        if span_id in ids:
            raise ReproError(
                f"{path}: duplicate span id {span_id}")
        ids.add(span_id)
    for record in records:
        if record.get("type") != "span":
            continue
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            raise ReproError(
                f"{path}: span {record['span_id']} references "
                f"unknown parent {parent}")
    return records


def chrome_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON from parsed span records.

    Viewable in Perfetto or ``chrome://tracing``; spans become complete
    ("X") events on one process/thread track with kinds as categories.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") != "span":
            continue
        args = dict(record.get("attrs") or {})
        args["span_id"] = record["span_id"]
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("error"):
            args["error"] = record["error"]
        events.append({
            "name": record["name"],
            "cat": record.get("kind", "span"),
            "ph": "X",
            "ts": record.get("t_start_s", 0.0) * 1e6,
            "dur": (record.get("dur_s") or 0.0) * 1e6,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Sequence[Dict[str, Any]],
                       path: str) -> str:
    """Write the Perfetto-loadable Chrome trace JSON for ``records``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
    return path


# --- cross-process stitching ----------------------------------------------


def trace_source(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    """The ``trace_meta`` source of a parsed trace, if it has one."""
    for record in records:
        if record.get("type") == "trace_meta":
            source = record.get("source")
            if isinstance(source, str) and source:
                return source
    return None


def stitch_traces(traces: Sequence[Any]) -> List[Dict[str, Any]]:
    """Merge per-process traces into one globally-referenced span list.

    ``traces`` is a sequence of ``(source, records)`` pairs (records as
    :func:`read_trace_jsonl` returns them).  Each span's local integer
    id becomes the global ``"<source>:<span_id>"`` reference; a span
    whose ``remote_parent`` names a span in *another* trace is
    re-parented under it — this is where a server request tree hangs
    under the client span that issued it (even when the daemon also
    attached it under a local span for its own report), and why the
    whole thing becomes one tree.  A ``remote_parent`` that resolves
    to no known span (a trace is missing from the merge) falls back
    to the local parent, or a root, rather than failing.  Effective ``trace_id`` is inherited down the
    stitched tree, so every span of one request carries the request's
    trace id.  Output order is deterministic: input order of the
    traces, span-id order within each — byte-identical across runs
    once :func:`strip_timing` removes the wall clocks.
    """
    known = set()
    for source, records in traces:
        for record in records:
            if record.get("type") == "span":
                known.add(f"{source}:{record['span_id']}")
    stitched: List[Dict[str, Any]] = []
    by_id: Dict[str, Dict[str, Any]] = {}
    for source, records in traces:
        spans = sorted((r for r in records if r.get("type") == "span"),
                       key=lambda r: r["span_id"])
        for record in spans:
            gid = f"{source}:{record['span_id']}"
            remote = record.get("remote_parent")
            if remote in known:
                parent: Optional[str] = remote
            elif record.get("parent_id") is not None:
                parent = f"{source}:{record['parent_id']}"
            else:
                parent = None
            out: Dict[str, Any] = {
                "type": "span",
                "id": gid,
                "parent": parent,
                "source": source,
                "name": record["name"],
                "kind": record.get("kind", "span"),
                "attrs": record.get("attrs") or {},
                "t_start_s": record.get("t_start_s", 0.0),
                "dur_s": record.get("dur_s", 0.0),
                "ok": record.get("ok", True),
                "error": record.get("error"),
            }
            if record.get("trace_id") is not None:
                out["trace_id"] = record["trace_id"]
            stitched.append(out)
            by_id[gid] = out
    for out in stitched:
        if "trace_id" in out:
            continue
        chain = []
        node: Optional[Dict[str, Any]] = out
        trace_id = None
        while node is not None:
            if "trace_id" in node:
                trace_id = node["trace_id"]
                break
            chain.append(node)
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None
        if trace_id is not None:
            for entry in chain:
                entry["trace_id"] = trace_id
    return stitched


def stitched_lines(stitched: Sequence[Dict[str, Any]],
                   strip: bool = False) -> List[str]:
    """JSONL lines for a stitched trace (``strip`` removes wall
    clocks — the CI byte-identity form)."""
    records = ([strip_timing(record) for record in stitched]
               if strip else list(stitched))
    return [json.dumps(record, sort_keys=True) for record in records]


def stitched_chrome_trace(
        stitched: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON for a stitched multi-process trace.

    Each source becomes its own pid (named via ``process_name``
    metadata); timestamps are normalized per source (every process's
    first span starts at 0) because ``perf_counter`` epochs are not
    comparable across processes.
    """
    sources: List[str] = []
    for record in stitched:
        if record["source"] not in sources:
            sources.append(record["source"])
    pids = {source: index + 1 for index, source in enumerate(sources)}
    epochs = {
        source: min((r["t_start_s"] for r in stitched
                     if r["source"] == source), default=0.0)
        for source in sources}
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pids[source],
         "tid": 0, "args": {"name": source}}
        for source in sources]
    for record in stitched:
        args = dict(record.get("attrs") or {})
        args["id"] = record["id"]
        if record.get("parent") is not None:
            args["parent"] = record["parent"]
        if record.get("trace_id") is not None:
            args["trace_id"] = record["trace_id"]
        if record.get("error"):
            args["error"] = record["error"]
        events.append({
            "name": record["name"],
            "cat": record.get("kind", "span"),
            "ph": "X",
            "ts": (record["t_start_s"]
                   - epochs[record["source"]]) * 1e6,
            "dur": (record.get("dur_s") or 0.0) * 1e6,
            "pid": pids[record["source"]],
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}

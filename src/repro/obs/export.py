"""Trace exporters: JSONL span logs and Chrome trace-event JSON.

The JSONL format is the repo's durable trace artifact: one JSON object
per line, ``{"type": "span", ...}`` records in span-id order followed
by an optional ``{"type": "metrics", ...}`` record carrying the run's
metrics snapshot.  Keys are sorted and floats emitted by ``json`` so a
record is a pure function of its values — combined with the tracer's
deterministic ids, two runs at the same seed differ *only* in the
``t_start_s``/``dur_s`` fields, which :func:`strip_timing` removes for
byte-identical CI diffs.

The Chrome trace-event export produces the ``traceEvents`` JSON that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly: complete events (``"ph": "X"``) with microsecond timestamps,
one row per span, span kinds as categories.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError
from .trace import Span

#: Fields that carry wall clocks — the only run-to-run nondeterminism.
TIMING_FIELDS = ("t_start_s", "dur_s")


def span_record(span: Span) -> Dict[str, Any]:
    """The JSONL dict for one closed span."""
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "attrs": span.attrs,
        "t_start_s": span.t_start_s,
        "dur_s": span.dur_s if span.dur_s is not None else 0.0,
        "ok": span.ok,
        "error": span.error,
    }


def _is_timing_gauge(name: str) -> bool:
    """Gauge names whose value is wall-clock-derived, by convention:
    the last dotted component is ``ns_*`` / ``*_ns`` / ``*_s`` (e.g.
    ``estimator.batch.ns_per_point``)."""
    leaf = name.rsplit(".", 1)[-1]
    return (leaf.startswith("ns_") or leaf.endswith("_ns")
            or leaf.endswith("_s"))


def strip_timing(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` with every wall-clock field removed.

    Span records lose :data:`TIMING_FIELDS`; a metrics record loses its
    histogram timing fields and timing-valued gauges (counts are kept —
    they are deterministic).
    """
    stripped = {key: value for key, value in record.items()
                if key not in TIMING_FIELDS}
    if record.get("type") == "metrics":
        metrics = stripped.get("metrics", {})
        histograms = metrics.get("histograms")
        timing_gauges = [name for name in metrics.get("gauges", {})
                         if _is_timing_gauge(name)]
        if histograms or timing_gauges:
            stripped = json.loads(json.dumps(stripped))  # deep copy
            for hist in stripped["metrics"].get("histograms",
                                                {}).values():
                for key in [k for k in hist if k.endswith("_s")]:
                    del hist[key]
            for name in timing_gauges:
                del stripped["metrics"]["gauges"][name]
    return stripped


def trace_lines(spans: Sequence[Span],
                metrics: Optional[Dict[str, Any]] = None,
                strip: bool = False) -> List[str]:
    """The JSONL lines for a trace, in deterministic order."""
    records: List[Dict[str, Any]] = [
        span_record(span)
        for span in sorted(spans, key=lambda s: s.span_id)]
    if metrics is not None:
        records.append({"type": "metrics", "metrics": metrics})
    if strip:
        records = [strip_timing(record) for record in records]
    return [json.dumps(record, sort_keys=True) for record in records]


def write_trace_jsonl(spans: Sequence[Span], path: str,
                      metrics: Optional[Dict[str, Any]] = None) -> str:
    """Write the JSONL span log (plus optional metrics record)."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_lines(spans, metrics=metrics):
            handle.write(line + "\n")
    return path


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into records, validating the span tree.

    Every span record must carry a unique ``span_id`` and reference an
    existing parent; violations raise :class:`~repro.errors.ReproError`
    so a truncated or hand-edited trace fails loudly.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{path}:{lineno}: invalid JSON: {exc}") from exc
    except OSError as exc:
        raise ReproError(f"cannot read trace {path!r}: {exc}") from exc
    ids = set()
    for record in records:
        if record.get("type") != "span":
            continue
        span_id = record.get("span_id")
        if span_id in ids:
            raise ReproError(
                f"{path}: duplicate span id {span_id}")
        ids.add(span_id)
    for record in records:
        if record.get("type") != "span":
            continue
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            raise ReproError(
                f"{path}: span {record['span_id']} references "
                f"unknown parent {parent}")
    return records


def chrome_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON from parsed span records.

    Viewable in Perfetto or ``chrome://tracing``; spans become complete
    ("X") events on one process/thread track with kinds as categories.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") != "span":
            continue
        args = dict(record.get("attrs") or {})
        args["span_id"] = record["span_id"]
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("error"):
            args["error"] = record["error"]
        events.append({
            "name": record["name"],
            "cat": record.get("kind", "span"),
            "ph": "X",
            "ts": record.get("t_start_s", 0.0) * 1e6,
            "dur": (record.get("dur_s") or 0.0) * 1e6,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Sequence[Dict[str, Any]],
                       path: str) -> str:
    """Write the Perfetto-loadable Chrome trace JSON for ``records``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
    return path

"""Opt-in cProfile capture around pipeline stages.

``repro --profile-out DIR sram ...`` wraps every pipeline stage body in
a :class:`cProfile.Profile` and dumps one ``.prof`` file per stage
execution into ``DIR`` — loadable with ``python -m pstats`` or
snakeviz.  Files are numbered by a process-wide sequence so repeated
flows (per-die measurement, corner simulation) never overwrite each
other's captures.
"""

from __future__ import annotations

import cProfile
import os
from contextlib import contextmanager
from typing import Iterator, Optional

_sequence = 0


def next_profile_path(directory: str, label: str) -> str:
    """A unique ``DIR/NNN_label.prof`` path (process-wide sequence)."""
    global _sequence
    _sequence += 1
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                   for ch in label)
    return os.path.join(directory, f"{_sequence:04d}_{safe}.prof")


@contextmanager
def maybe_profile(directory: Optional[str],
                  label: str) -> Iterator[None]:
    """Profile the with-block into ``directory`` when one is given.

    With ``directory=None`` this is a zero-overhead no-op, which is how
    every call site stays unconditional.
    """
    if not directory:
        yield
        return
    os.makedirs(directory, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(next_profile_path(directory, label))

"""Observability subsystem: tracing, metrics, exporters, run reports.

The measurement substrate behind every performance claim in the repo:

``repro.obs.trace``
    :class:`Tracer` — hierarchical spans (deterministic ids, wall
    clocks isolated in dedicated fields) opened around pipeline stages,
    characterization batches, parallel task groups, cache probes, sweep
    points, yield phases and die measurements; closed spans feed the
    session event-sink protocol as :class:`SpanEvent` records.
``repro.obs.metrics``
    :class:`MetricsRegistry` — counters/gauges/histograms plus
    :func:`collect_snapshot`, the one dict unifying registry, cache and
    executor statistics, and :func:`render_snapshot`, the one renderer
    behind ``--metrics`` and ``--cache-stats``.
``repro.obs.export``
    JSONL span logs (deterministic after :func:`strip_timing` — the CI
    byte-identity diff) and Perfetto-loadable Chrome trace JSON.
``repro.obs.report``
    :func:`render_report` — the per-stage time table (percentages),
    cache hit ratio and executor retry summary of ``repro report``.
``repro.obs.profile``
    :func:`maybe_profile` — opt-in cProfile capture per pipeline stage
    (``--profile-out DIR``).
``repro.obs.telemetry``
    :class:`Telemetry` — the serve daemon's live plane: per-request-type
    log-bucketed latency histograms (bounded memory), uptime/inflight,
    a Prometheus text renderer, a rotating JSONL ops log, and the
    ``repro top`` dashboard renderer.
"""

from .export import (
    TIMING_FIELDS,
    chrome_trace,
    read_trace_jsonl,
    span_record,
    stitch_traces,
    stitched_chrome_trace,
    stitched_lines,
    strip_timing,
    trace_lines,
    trace_source,
    write_chrome_trace,
    write_trace_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_snapshot,
    render_snapshot,
)
from .profile import maybe_profile
from .report import render_report, stage_breakdown
from .telemetry import (
    LogBucketHistogram,
    OpsLog,
    Telemetry,
    render_dashboard,
    render_prometheus,
)
from .trace import (
    KIND_REQUEST,
    KIND_TASK,
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    aggregate_spans,
    maybe_span,
    mint_trace_id,
)

__all__ = [
    "Span", "SpanEvent", "Tracer", "aggregate_spans", "maybe_span",
    "TraceContext", "mint_trace_id", "KIND_REQUEST", "KIND_TASK",
    "LogBucketHistogram", "OpsLog", "Telemetry",
    "render_dashboard", "render_prometheus",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "collect_snapshot", "render_snapshot",
    "TIMING_FIELDS", "chrome_trace", "read_trace_jsonl", "span_record",
    "stitch_traces", "stitched_chrome_trace", "stitched_lines",
    "strip_timing", "trace_lines", "trace_source",
    "write_chrome_trace", "write_trace_jsonl",
    "maybe_profile",
    "render_report", "stage_breakdown",
]

"""Live telemetry plane for the serve daemon.

Long-lived servers need observability that batch runs don't: latency
*percentiles* per request type (a mean hides the tail), uptime and
inflight gauges, a scrape-able text format, and an ops log that can't
fill the disk.  This module is that plane:

:class:`LogBucketHistogram`
    A :class:`~repro.obs.metrics.Histogram` that serializes its sparse
    log-spaced bucket counts and merges with peers — bounded memory
    (at most ~110 integer keys) no matter how many observations a
    daemon absorbs.  No raw-value lists, ever.
:class:`Telemetry`
    Lock-guarded per-request-type aggregation (count/ok/error/
    coalesced + latency histogram) plus uptime and inflight gauges.
    ``snapshot()`` is the JSON body of the ``telemetry`` protocol verb.
:class:`OpsLog`
    Rolling JSONL operations log with size-based rotation
    (``path`` -> ``path.1`` -> ... -> dropped).
:func:`render_prometheus`
    Prometheus text exposition of a telemetry reply
    (``repro client telemetry --prom``).
:func:`render_dashboard`
    The one-screen ``repro top`` view: request rates, p50/p95/p99,
    cache hit ratio, active sweeps/signoffs.

Everything here is pure stdlib and side-effect free except
:class:`OpsLog`; the serve layer owns the wiring.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .metrics import Histogram, bucket_bounds  # noqa: F401  (re-export)

#: Quantiles every snapshot/renderer reports, in order.
QUANTILES = (0.5, 0.95, 0.99)


@dataclass
class LogBucketHistogram(Histogram):
    """A mergeable, serializable :class:`Histogram` (no name needed).

    Inherits the bounded sparse-bucket ``observe``/``quantile`` core
    and adds the wire format the telemetry verb ships: plain dicts
    with stringified bucket keys (JSON objects key on strings).
    """

    name: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.min is not None else 0.0,
            "max_s": self.max if self.max is not None else 0.0,
            "buckets": {str(key): self.buckets[key]
                        for key in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogBucketHistogram":
        hist = cls(count=int(data.get("count", 0)),
                   total=float(data.get("total_s", 0.0)))
        if hist.count:
            hist.min = float(data.get("min_s", 0.0))
            hist.max = float(data.get("max_s", 0.0))
        hist.buckets = {int(key): int(value) for key, value in
                        data.get("buckets", {}).items()}
        return hist

    def merge(self, other: "LogBucketHistogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            mine, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, bound, theirs)
            else:
                pick = min if bound == "min" else max
                setattr(self, bound, pick(mine, theirs))
        for key, value in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + value


class Telemetry:
    """Thread-safe per-request-type latency/outcome aggregation.

    The serve daemon's compute threads call :meth:`begin`/:meth:`end`
    around each request and :meth:`record` once the outcome is known;
    any thread may take a :meth:`snapshot` concurrently.  One lock
    guards everything — the critical sections are tiny (dict bumps),
    so contention is negligible next to request compute time.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._start = clock()
        self._inflight = 0
        self._inflight_types: Dict[str, int] = {}
        self._types: Dict[str, Dict[str, Any]] = {}

    def begin(self, rtype: Optional[str] = None) -> None:
        with self._lock:
            self._inflight += 1
            if rtype is not None:
                self._inflight_types[rtype] = \
                    self._inflight_types.get(rtype, 0) + 1

    def end(self, rtype: Optional[str] = None) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if rtype is not None:
                left = self._inflight_types.get(rtype, 0) - 1
                if left > 0:
                    self._inflight_types[rtype] = left
                else:
                    self._inflight_types.pop(rtype, None)

    def record(self, rtype: str, dur_s: float, *,
               ok: bool = True, coalesced: bool = False) -> None:
        with self._lock:
            entry = self._types.get(rtype)
            if entry is None:
                entry = self._types[rtype] = {
                    "hist": LogBucketHistogram(),
                    "ok": 0, "errors": 0, "coalesced": 0}
            entry["hist"].observe(dur_s)
            entry["ok" if ok else "errors"] += 1
            if coalesced:
                entry["coalesced"] += 1

    @property
    def uptime_s(self) -> float:
        return self._clock() - self._start

    def snapshot(self) -> Dict[str, Any]:
        """Sorted, JSON-ready view — the ``telemetry`` verb's core."""
        with self._lock:
            uptime = max(self._clock() - self._start, 1e-9)
            requests: Dict[str, Any] = {}
            for rtype in sorted(self._types):
                entry = self._types[rtype]
                hist: LogBucketHistogram = entry["hist"]
                requests[rtype] = {
                    "count": hist.count,
                    "ok": entry["ok"],
                    "errors": entry["errors"],
                    "coalesced": entry["coalesced"],
                    "rate_per_s": hist.count / uptime,
                    "mean_s": hist.mean,
                    **{f"p{int(q * 100)}_s": hist.quantile(q)
                       for q in QUANTILES},
                    "hist": hist.as_dict(),
                }
            return {"uptime_s": uptime,
                    "inflight": self._inflight,
                    "inflight_by_type": dict(sorted(
                        self._inflight_types.items())),
                    "requests": requests}


@dataclass
class OpsLog:
    """Append-only JSONL ops log with size-based rotation.

    When the active file would exceed ``max_bytes`` the files shift
    ``path`` -> ``path.1`` -> ... -> ``path.<backups>`` and the oldest
    drops — a daemon can log every request forever in bounded disk.
    Thread-safe; each record lands as one ``\\n``-terminated line.
    """

    path: str
    max_bytes: int = 1_000_000
    backups: int = 3
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size and size + len(data) > self.max_bytes:
                self._rotate()
            with open(self.path, "ab") as handle:
                handle.write(data)

    def _rotate(self) -> None:
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        if self.backups >= 1 and os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")


def render_prometheus(reply: Dict[str, Any]) -> str:
    """Prometheus text exposition (v0.0.4) of a ``telemetry`` reply.

    Latency histograms render as native prometheus summaries
    (quantile-labelled gauges + ``_sum``/``_count``) — the buckets are
    log-spaced and non-cumulative, so a summary is the honest mapping.
    """
    lines: List[str] = []

    def metric(name: str, kind: str, help_text: str,
               samples: List[str]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    metric("repro_uptime_seconds", "gauge", "Daemon uptime.",
           [f"repro_uptime_seconds {reply.get('uptime_s', 0.0):.6f}"])
    metric("repro_inflight_requests", "gauge",
           "Requests currently executing.",
           [f"repro_inflight_requests {reply.get('inflight', 0)}"])
    requests = reply.get("requests", {})
    totals = []
    for rtype in sorted(requests):
        entry = requests[rtype]
        for outcome in ("ok", "errors"):
            totals.append(
                f'repro_requests_total{{type="{rtype}",'
                f'outcome="{outcome}"}} {entry.get(outcome, 0)}')
    metric("repro_requests_total", "counter",
           "Requests served, by type and outcome.", totals)
    latency = []
    for rtype in sorted(requests):
        entry = requests[rtype]
        for q in QUANTILES:
            latency.append(
                f'repro_request_latency_seconds{{type="{rtype}",'
                f'quantile="{q}"}} '
                f"{entry.get(f'p{int(q * 100)}_s', 0.0):.6f}")
        hist = entry.get("hist", {})
        latency.append(
            f'repro_request_latency_seconds_sum{{type="{rtype}"}} '
            f"{hist.get('total_s', 0.0):.6f}")
        latency.append(
            f'repro_request_latency_seconds_count{{type="{rtype}"}} '
            f"{hist.get('count', 0)}")
    metric("repro_request_latency_seconds", "summary",
           "Request latency quantiles, by type.", latency)
    coalesce = reply.get("coalesce") or {}
    metric("repro_coalesce_hit_ratio", "gauge",
           "Share of coalesceable requests served from in-flight "
           "computations.",
           [f"repro_coalesce_hit_ratio "
            f"{coalesce.get('hit_rate', 0.0):.6f}"])
    cache = reply.get("cache") or {}
    metric("repro_cache_hit_ratio", "gauge",
           "Characterization cache hit ratio.",
           [f"repro_cache_hit_ratio {cache.get('hit_rate', 0.0):.6f}"])
    active = reply.get("active") or {}
    metric("repro_active_artifacts", "gauge",
           "Artifacts retained, by kind.",
           [f'repro_active_artifacts{{kind="{kind}"}} '
            f"{active[kind]}" for kind in sorted(active)])
    return "\n".join(lines) + "\n"


def _fmt_ms(seconds: float) -> str:
    ms = seconds * 1e3
    if ms >= 1000:
        return f"{ms / 1e3:.2f}s"
    return f"{ms:.1f}ms" if ms >= 0.1 else f"{ms * 1e3:.0f}us"


def render_dashboard(reply: Dict[str, Any],
                     prev: Optional[Dict[str, Any]] = None,
                     interval_s: float = 2.0) -> str:
    """One refresh of the ``repro top`` screen (pure text, no cursor).

    ``prev`` is the previous poll's reply; when present, per-type
    request rates are the *delta* over ``interval_s`` (what's moving
    now) instead of the lifetime average.
    """
    uptime = reply.get("uptime_s", 0.0)
    coalesce = reply.get("coalesce") or {}
    cache = reply.get("cache") or {}
    active = reply.get("active") or {}
    lines = [
        "repro top — serve daemon telemetry",
        (f"uptime {uptime:8.1f}s   inflight {reply.get('inflight', 0)}"
         f"   coalesce hit {coalesce.get('hit_rate', 0.0) * 100:5.1f}%"
         f"   cache hit {cache.get('hit_rate', 0.0) * 100:5.1f}%"),
    ]
    if active:
        lines.append("active: " + "  ".join(
            f"{kind}={active[kind]}" for kind in sorted(active)))
    lines.append("")
    header = (f"{'type':<13} {'count':>8} {'rate/s':>9} {'p50':>8}"
              f" {'p95':>8} {'p99':>8} {'mean':>8} {'err':>5}")
    lines.append(header)
    lines.append("-" * len(header))
    requests = reply.get("requests", {})
    prev_requests = (prev or {}).get("requests", {})
    for rtype in sorted(requests):
        entry = requests[rtype]
        count = entry.get("count", 0)
        prev_count = prev_requests.get(rtype, {}).get("count")
        if prev_count is not None and interval_s > 0:
            rate = max(0, count - prev_count) / interval_s
        else:
            rate = entry.get("rate_per_s", 0.0)
        rate_text = f"{rate:.2f}" if rate < 1e4 else f"{rate:.3g}"
        lines.append(
            f"{rtype:<13} {count:>8} {rate_text:>9}"
            f" {_fmt_ms(entry.get('p50_s', 0.0)):>8}"
            f" {_fmt_ms(entry.get('p95_s', 0.0)):>8}"
            f" {_fmt_ms(entry.get('p99_s', 0.0)):>8}"
            f" {_fmt_ms(entry.get('mean_s', 0.0)):>8}"
            f" {entry.get('errors', 0):>5}")
    if not requests:
        lines.append("(no requests served yet)")
    return "\n".join(lines)

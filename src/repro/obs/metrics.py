"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` serves one run (the CLI builds one per
invocation and hangs it off the :class:`~repro.session.Session`).
Instrumented layers bump metrics through the registry when one is
present and skip the work entirely when it is ``None`` — exactly the
opt-in contract the tracer follows.

Metric names are dotted paths naming the owning subsystem::

    perf.cache.hits / misses / quarantined / bytes_written / ...
    perf.parallel.tasks / retries / timeouts / pool_restarts / ...
    synth.pipeline.stage.<stage>   (histogram, seconds)
    explore.sweep.points_evaluated / points_skipped

:func:`collect_snapshot` folds the registry together with the cache's
:class:`~repro.perf.cache.CacheStats` and the executor's
:class:`~repro.perf.parallel.ExecutorStats` into one plain, sorted,
JSON-serializable dict — the single format the CLI renders for
``--metrics`` (and ``--cache-stats``), the ``report`` subcommand
embeds in traces, and the benchmarks write into their JSON artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Log-spaced bucket resolution shared by every latency histogram in
#: the repo (:class:`Histogram` here and the serve daemon's
#: :class:`~repro.obs.telemetry.LogBucketHistogram`).  Ten buckets per
#: decade keeps quantile error under ~12% while the whole span from
#: 100 ns to 10 000 s fits in at most ``BUCKET_MAX - BUCKET_MIN + 1``
#: integer keys — bounded memory no matter how long a daemon runs.
BUCKETS_PER_DECADE = 10
BUCKET_MIN = -7 * BUCKETS_PER_DECADE   # 1e-7 s = 100 ns
BUCKET_MAX = 4 * BUCKETS_PER_DECADE    # 1e4 s


def bucket_index(value: float) -> int:
    """Map a (seconds) observation to its log-spaced bucket key."""
    if value <= 0.0:
        return BUCKET_MIN
    index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    return max(BUCKET_MIN, min(BUCKET_MAX, index))


def bucket_bounds(index: int) -> Tuple[float, float]:
    """Inclusive-lower / exclusive-upper bounds of a bucket key."""
    return (10.0 ** (index / BUCKETS_PER_DECADE),
            10.0 ** ((index + 1) / BUCKETS_PER_DECADE))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """Last-written value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values with bounded memory.

    Holds count/total/min/max plus a *sparse* dict of log-spaced
    bucket counts (:func:`bucket_index` keys) — never a raw-value
    list, so a histogram inside a long-lived daemon stays at most
    ``BUCKET_MAX - BUCKET_MIN + 1`` entries regardless of how many
    observations it absorbs.  :func:`collect_snapshot` intentionally
    does not expose the buckets (its histogram dict shape is golden
    across PRs); :meth:`quantile` is how percentiles get out.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = bucket_index(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts.

        Returns the geometric midpoint of the bucket holding the
        ``q``-th observation, clamped into the exact observed
        ``[min, max]`` range so p0/p100 are never off by a bucket.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= rank:
                lo, hi = bucket_bounds(key)
                mid = math.sqrt(lo * hi)
                return max(self.min or 0.0, min(self.max or mid, mid))
        return self.max if self.max is not None else 0.0


@dataclass
class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]


def collect_snapshot(metrics: Optional[MetricsRegistry] = None,
                     cache_stats=None, executor_stats=None,
                     request_id: Optional[str] = None
                     ) -> Dict[str, Any]:
    """One sorted, JSON-ready dict unifying every metric source.

    ``cache_stats`` is a :class:`~repro.perf.cache.CacheStats`,
    ``executor_stats`` an
    :class:`~repro.perf.parallel.ExecutorStats`; either may be ``None``.
    Histogram entries isolate their wall clocks in dedicated fields
    (``total_s``/``mean_s``/...) so downstream consumers can strip or
    keep timings wholesale.

    ``request_id`` tags the snapshot with the serving-layer request it
    covers (the brick-library server snapshots per request), so a
    snapshot embedded in a trace or a ``stats`` reply names which
    request produced its numbers.
    """
    snapshot: Dict[str, Any] = {}
    if request_id is not None:
        snapshot["request_id"] = request_id
    if cache_stats is not None:
        snapshot["cache"] = {key: value for key, value in
                             sorted(cache_stats.as_dict().items())}
    if executor_stats is not None:
        snapshot["executor"] = {key: value for key, value in
                                sorted(executor_stats.as_dict().items())}
    if metrics is not None:
        snapshot["counters"] = {
            name: counter.value for name, counter in
            sorted(metrics.counters.items())}
        snapshot["gauges"] = {
            name: gauge.value for name, gauge in
            sorted(metrics.gauges.items())}
        snapshot["histograms"] = {
            name: {
                "count": hist.count,
                "total_s": hist.total,
                "mean_s": hist.mean,
                "min_s": hist.min if hist.min is not None else 0.0,
                "max_s": hist.max if hist.max is not None else 0.0,
            }
            for name, hist in sorted(metrics.histograms.items())}
    return snapshot


#: Sections :func:`render_snapshot` knows how to print, in order.
SECTIONS = ("cache", "executor", "counters", "gauges", "histograms")


def render_snapshot(snapshot: Dict[str, Any],
                    sections: Optional[Tuple[str, ...]] = None) -> str:
    """Human-readable rendering of a :func:`collect_snapshot` dict.

    This is the one code path behind ``--metrics`` *and* the legacy
    ``--cache-stats`` (which renders only the ``cache`` section), so
    cache, executor and stage numbers always format identically.
    """
    sections = SECTIONS if sections is None else sections
    lines: List[str] = []
    cache = snapshot.get("cache")
    if cache is not None and "cache" in sections:
        hits = cache["memory_hits"] + cache["disk_hits"]
        lines.append(
            f"cache: {hits} hits ({cache['memory_hits']} memory, "
            f"{cache['disk_hits']} disk), {cache['misses']} misses, "
            f"{cache['bytes_written']} bytes written, "
            f"{cache['bytes_read']} bytes read")
        lines.append(
            f"cache: {cache['hit_rate'] * 100:.1f}% hit rate, "
            f"{cache['puts']} puts, {cache['evictions']} evictions")
        if cache["quarantined"]:
            n = cache["quarantined"]
            lines.append(
                f"cache: {n} corrupt entr"
                f"{'y' if n == 1 else 'ies'} quarantined")
    executor = snapshot.get("executor")
    if executor is not None and "executor" in sections:
        lines.append(
            f"executor: {executor['tasks']} tasks "
            f"({executor['pool_tasks']} pooled, "
            f"{executor['serial_tasks']} serial), "
            f"{executor['retried_tasks']} retried, "
            f"{executor['timeouts']} timeouts")
        lines.append(
            f"executor: {executor['pool_restarts']} pool restarts, "
            f"{executor['failures']} terminal failures")
    counters = snapshot.get("counters")
    if counters and "counters" in sections:
        for name, value in counters.items():
            lines.append(f"counter: {name} = {value}")
    gauges = snapshot.get("gauges")
    if gauges and "gauges" in sections:
        for name, value in gauges.items():
            lines.append(f"gauge: {name} = {value:g}")
    histograms = snapshot.get("histograms")
    if histograms and "histograms" in sections:
        for name, hist in histograms.items():
            lines.append(
                f"timing: {name} n={hist['count']} "
                f"total={hist['total_s'] * 1e3:.2f}ms "
                f"mean={hist['mean_s'] * 1e3:.2f}ms "
                f"max={hist['max_s'] * 1e3:.2f}ms")
    return "\n".join(lines)

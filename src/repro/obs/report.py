"""Human-readable run reports rendered from a trace.

:func:`render_report` is what ``repro report t.jsonl`` prints: a
per-stage wall-clock table with percentages (summing to ~100%), the
cache hit ratio, and the executor retry summary — the three numbers the
paper's "regenerates in seconds" claim rests on.  It consumes the
parsed JSONL records of :func:`repro.obs.export.read_trace_jsonl`, so
a report can be rendered from a live tracer or from a trace file saved
weeks ago.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


def stage_breakdown(records: Sequence[Dict[str, Any]],
                    kind: str = "stage"
                    ) -> List[Tuple[str, int, float, float]]:
    """``(name, calls, total_s, percent)`` rows for one span kind.

    Falls back to aggregating over *every* span kind when the trace has
    no spans of ``kind`` (e.g. a sweep trace with no synthesis stages),
    grouping by ``kind:name`` so the report is never empty for a
    non-empty trace.  Percentages are of the summed row time.
    """
    rows: List[Tuple[str, int, float]] = []
    index: Dict[str, int] = {}

    def add(label: str, dur: float) -> None:
        if label not in index:
            index[label] = len(rows)
            rows.append((label, 0, 0.0))
        name, calls, total = rows[index[label]]
        rows[index[label]] = (name, calls + 1, total + dur)

    spans = [r for r in records if r.get("type") == "span"]
    staged = [r for r in spans if r.get("kind") == kind]
    if staged:
        for record in staged:
            add(record["name"], record.get("dur_s") or 0.0)
    else:
        for record in spans:
            add(f"{record.get('kind', 'span')}:{record['name']}",
                record.get("dur_s") or 0.0)
    grand = sum(total for _, _, total in rows)
    return [(name, calls, total,
             100.0 * total / grand if grand > 0 else 0.0)
            for name, calls, total in rows]


def filter_request_records(records: Sequence[Dict[str, Any]],
                           request_id: str) -> List[Dict[str, Any]]:
    """Only the spans tagged with one serve ``request_id`` (plus any
    non-span records).  Every span a daemon grafts for a request
    carries the tag, so this pulls one request's complete tree out of
    a busy server's trace — ``repro report trace.jsonl --request c3``.
    """
    kept: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") != "span":
            kept.append(record)
            continue
        attrs = record.get("attrs") or {}
        if attrs.get("request_id") == request_id:
            kept.append(record)
    return kept


def _table(rows: List[Tuple[str, int, float, float]]) -> List[str]:
    width = max([len(name) for name, _, _, _ in rows] + [len("stage")])
    lines = [f"  {'stage'.ljust(width)} {'calls':>5s} "
             f"{'time':>10s} {'share':>7s}"]
    lines.append("  " + "-" * (width + 25))
    total_s = 0.0
    total_calls = 0
    for name, calls, total, pct in rows:
        total_s += total
        total_calls += calls
        lines.append(f"  {name.ljust(width)} {calls:>5d} "
                     f"{total * 1e3:>8.2f}ms {pct:>6.1f}%")
    lines.append("  " + "-" * (width + 25))
    lines.append(f"  {'total'.ljust(width)} {total_calls:>5d} "
                 f"{total_s * 1e3:>8.2f}ms {100.0:>6.1f}%")
    return lines


def render_report(records: Sequence[Dict[str, Any]],
                  title: str = "run report") -> str:
    """The full human-readable run report for a parsed trace."""
    lines = [title, "=" * len(title)]
    spans = [r for r in records if r.get("type") == "span"]
    failed = [r for r in spans if not r.get("ok", True)]
    lines.append(f"spans: {len(spans)} recorded, {len(failed)} failed")
    rows = stage_breakdown(records)
    if rows:
        lines.append("")
        lines.extend(_table(rows))
    metrics = _metrics_record(records)
    if metrics is not None:
        request_id = metrics.get("request_id")
        if request_id:
            lines.append(f"request: {request_id}")
        cache = metrics.get("cache")
        if cache is not None:
            hits = cache["memory_hits"] + cache["disk_hits"]
            lookups = hits + cache["misses"]
            lines.append("")
            lines.append(
                f"cache: {hits}/{lookups} hits "
                f"({cache['hit_rate'] * 100:.1f}%), "
                f"{cache['quarantined']} quarantined")
        executor = metrics.get("executor")
        if executor is not None:
            lines.append(
                f"executor: {executor['tasks']} tasks, "
                f"{executor['retried_tasks']} retried, "
                f"{executor['timeouts']} timeouts, "
                f"{executor['pool_restarts']} pool restarts")
        serve = {name: value for name, value in
                 (metrics.get("counters") or {}).items()
                 if name.startswith("serve.")}
        if serve:
            # Serving-layer counters (requests by type, coalesce
            # hits/computes, busy rejections) from the daemon.
            for name, value in sorted(serve.items()):
                lines.append(f"serve: {name} = {value}")
    for record in failed:
        lines.append(f"failed: {record['name']}: {record.get('error')}")
    return "\n".join(lines)


def _metrics_record(records: Sequence[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
    for record in records:
        if record.get("type") == "metrics":
            return record.get("metrics")
    return None

"""The statistical signoff engine: Monte Carlo PVT x defect yield.

The paper validates its estimated libraries against fabricated chips
whose speeds spread across process variation (Fig. 4b); production
signoff needs that spread as a *distribution*, not a point.  This
engine draws an N-thousand-sample population of PVT perturbations from
the counter-based streams of :mod:`repro.signoff.rng`, crosses every
sample with a manufacturing-defect draw (:mod:`repro.faults`) and the
best/nominal/worst corner grid, and reduces to timing/energy/leakage
distributions (P50/P95/P99.9 + bootstrap CIs) plus raw/repaired yield.

Pricing rides the closed-form scaling law: under
``Technology.scaled(r, c, v, l)`` every delay scales by ``r*c``, every
energy by ``c*v**2`` and leakage by ``l*v``, so one cached estimate
per corner prices the whole population as numpy column ops — no
per-sample compile.  Only the defect draw is per-sample Python, and it
runs inside chunk workers fanned over
:func:`repro.perf.parallel.parallel_imap`.

Robustness is the headline:

* every chunk checkpoints into ``perf.cache`` under the plan
  fingerprint — a killed signoff resumes warm, byte-identical;
* an adaptive early-stop ends the stream when the relative 95 % CI
  half-width of the lead metric crosses ``ci_target`` (hard sample
  cap = ``n_samples``), evaluated over the *contiguous chunk prefix*
  in index order so the decision is independent of completion order;
* chunk failures degrade under ``keep_going`` into
  ``SignoffReport.failures`` (and are checkpointed, so a resumed
  report reproduces them) instead of aborting the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bricks.spec import BrickSpec
from ..errors import SignoffError
from ..faults.defects import DefectModel, inject
from ..faults.repair import RepairPlan, apply_repair
from ..obs.trace import maybe_span
from ..perf.characterize import _executor_fault_sink, cached_estimate
from ..perf.fingerprint import cache_key
from ..perf.parallel import TaskFailure, TraceTap, parallel_imap
from ..perf.timer import Stopwatch
from ..session import FaultEvent, Session
from ..silicon.variation import VariationModel
from ..tech.corners import corner
from ..units import format_si
from . import rng as streams
from .sampling import pvt_columns
from .stats import N_BOOT, ci_half_width, proportion_summary, summarize

#: Default population and chunking (2000 samples in 256-sample chunks).
DEFAULT_SAMPLES = 2000
DEFAULT_CHUNK = 256

#: Corner grid of a default signoff (Fig. 4b's three cases).
DEFAULT_CORNERS = ("nominal", "best", "worst")

#: Metrics reduced per corner, in report order.  Each maps to the
#: corner-base column it scales from.
REPORT_METRICS = ("read_delay", "read_energy", "write_energy",
                  "leakage_w")

#: Callback observing chunk completion: ``progress(done, total,
#: chunk_record)``.
ProgressCallback = Callable[[int, int, object], None]


@dataclass(frozen=True)
class SignoffPlan:
    """The pure planning half of a signoff run.

    Cheap to build (no pricing, no cache traffic): the serve layer
    calls it per request just to learn the coalescing ``fingerprint``.
    ``chunks`` is the ``(start, stop)`` slicing of the sample stream.
    """

    spec: BrickSpec
    stack: int
    n_samples: int
    chunk_size: int
    ci_target: Optional[float]
    corners: Tuple[str, ...]
    model: VariationModel
    defects: DefectModel
    repair: RepairPlan
    seed: int
    stream_key: int
    chunks: Tuple[Tuple[int, int], ...]
    fingerprint: str

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)


@dataclass(frozen=True)
class ChunkResult:
    """One completed chunk: PVT scale columns + defect outcomes for
    global samples ``[start, stop)``.  Checkpointed verbatim."""

    chunk: int
    start: int
    stop: int
    r_scale: np.ndarray
    c_scale: np.ndarray
    vdd_scale: np.ndarray
    leak_scale: np.ndarray
    derate: np.ndarray        # unrepaired read-path defect derate
    raw_ok: np.ndarray        # bool: die has zero defects
    repaired_ok: np.ndarray   # bool: die salvageable under the plan
    defect_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ChunkFailure:
    """A chunk whose worker died (kept only under ``keep_going``).
    Checkpointed like a result so resumed reports reproduce it."""

    chunk: int
    start: int
    stop: int
    error: str

    @property
    def label(self) -> str:
        return f"chunk[{self.start}:{self.stop})"


def chunk_checkpoint_key(fingerprint: str, keep_going: bool,
                         chunk: int) -> str:
    """Cache key of one chunk's checkpoint under a plan fingerprint."""
    return cache_key("signoff-chunk", fingerprint, keep_going, chunk)


def chunk_bounds(n_samples: int,
                 chunk_size: int) -> List[Tuple[int, int]]:
    """Slice ``[0, n_samples)`` into ``chunk_size`` chunks."""
    return [(start, min(start + chunk_size, n_samples))
            for start in range(0, n_samples, chunk_size)]


def _chunk_worker(task: Tuple) -> ChunkResult:
    """Price one chunk of the sample stream (module-level: picklable).

    PVT columns come vectorized from the counter streams; the defect
    draw is per-sample from a ``random.Random`` seeded by the global
    sample index, so any chunking or worker count sees the same dies.
    """
    (spec, model, defects, repair, chunk, start, stop, key) = task
    cols = pvt_columns(model, key, start, stop)
    n = stop - start
    derate = np.ones(n, dtype=np.float64)
    raw_ok = np.zeros(n, dtype=bool)
    repaired_ok = np.zeros(n, dtype=bool)
    counts: Dict[str, int] = {}
    for i in range(n):
        die = random.Random(f"{key}:defect:{start + i}")
        faulty = inject(spec, defects, die)
        for defect in faulty.defects:
            counts[defect.kind] = counts.get(defect.kind, 0) + 1
        raw_ok[i] = faulty.is_perfect
        repaired_ok[i] = apply_repair(faulty, repair).ok
        derate[i] = faulty.delay_derate(defects)
    return ChunkResult(
        chunk=chunk, start=start, stop=stop,
        r_scale=cols["r_scale"], c_scale=cols["c_scale"],
        vdd_scale=cols["vdd_scale"], leak_scale=cols["leak_scale"],
        derate=derate, raw_ok=raw_ok, repaired_ok=repaired_ok,
        defect_counts=counts)


@dataclass
class SignoffReport:
    """The reduced signoff: distributions, yield, failures.

    :meth:`render` is deterministic — it never prints wall-clock or
    resume counts, so an interrupted-and-resumed run at any ``--jobs``
    is byte-identical to an uninterrupted one.
    """

    spec_name: str
    memory_type: str
    words: int
    bits: int
    stack: int
    tech_name: str
    seed: int
    n_samples: int        # planned population (the hard cap)
    chunk_size: int
    ci_target: Optional[float]
    corners: Tuple[str, ...]
    samples_used: int     # samples in the evaluated chunk prefix
    samples_ok: int       # of those, samples from healthy chunks
    chunks_total: int
    chunks_used: int
    resumed_chunks: int
    early_stopped: bool
    achieved_ci: float
    metrics: Dict[str, Dict[str, Dict[str, float]]]  # corner->metric
    raw_yield: Dict[str, float]
    repaired_yield: Dict[str, float]
    defect_counts: Dict[str, int]
    failures: List[ChunkFailure] = field(default_factory=list)
    wall_clock_s: float = 0.0

    _UNITS = {"read_delay": "s", "read_energy": "J",
              "write_energy": "J", "leakage_w": "W"}

    def render(self) -> str:
        """Deterministic human-readable report (stdout-safe)."""
        lines = [
            f"signoff report: {self.spec_name} x{self.stack} stack "
            f"@ {self.tech_name}",
            f"  plan: {self.n_samples} samples in "
            f"{self.chunks_total} chunks of {self.chunk_size}, "
            f"seed {self.seed}, corners {'/'.join(self.corners)}",
            f"  used: {self.samples_ok}/{self.samples_used} samples "
            f"({self.chunks_used}/{self.chunks_total} chunks)",
        ]
        ci = (f"{self.achieved_ci * 100.0:.3f}%"
              if np.isfinite(self.achieved_ci) else "n/a")
        if self.ci_target is not None:
            target = f"{self.ci_target * 100.0:.3f}%"
            if self.early_stopped:
                lines.append(
                    f"  early-stop: engaged at "
                    f"{self.samples_used} samples "
                    f"(relative CI {ci} <= target {target})")
            else:
                lines.append(
                    f"  early-stop: not engaged "
                    f"(relative CI {ci} at sample cap, "
                    f"target {target})")
        else:
            lines.append(
                f"  early-stop: off (relative CI {ci} at sample cap)")
        for name in self.corners:
            lines.append(f"  corner {name}:")
            for metric in REPORT_METRICS:
                s = self.metrics[name][metric]
                unit = self._UNITS[metric]
                lines.append(
                    f"    {metric:<12s} mean "
                    f"{format_si(s['mean'], unit)}  "
                    f"ci95 [{format_si(s['ci_lo'], unit)}, "
                    f"{format_si(s['ci_hi'], unit)}]  "
                    f"p50 {format_si(s['p50'], unit)}  "
                    f"p95 {format_si(s['p95'], unit)}  "
                    f"p99.9 {format_si(s['p99_9'], unit)}")
        raw, rep = self.raw_yield, self.repaired_yield
        lines.append(
            f"  yield: raw {raw['rate']:.4f} "
            f"[{raw['ci_lo']:.4f}, {raw['ci_hi']:.4f}] -> repaired "
            f"{rep['rate']:.4f} "
            f"[{rep['ci_lo']:.4f}, {rep['ci_hi']:.4f}]")
        if self.defect_counts:
            lines.append("  defects sampled:")
            for kind in sorted(self.defect_counts):
                lines.append(
                    f"    {kind:<16s} {self.defect_counts[kind]}")
        else:
            lines.append("  defects sampled: none")
        if self.failures:
            lines.append(
                f"  failed chunks ({len(self.failures)}):")
            for failure in self.failures:
                lines.append(
                    f"    {failure.label}: {failure.error}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """JSON-ready payload (deterministic fields only)."""
        return {
            "spec": self.spec_name,
            "memory_type": self.memory_type,
            "words": self.words,
            "bits": self.bits,
            "stack": self.stack,
            "tech": self.tech_name,
            "seed": self.seed,
            "n_samples": self.n_samples,
            "chunk_size": self.chunk_size,
            "ci_target": self.ci_target,
            "corners": list(self.corners),
            "samples_used": self.samples_used,
            "samples_ok": self.samples_ok,
            "chunks_total": self.chunks_total,
            "chunks_used": self.chunks_used,
            "early_stopped": self.early_stopped,
            "achieved_ci": (self.achieved_ci
                            if np.isfinite(self.achieved_ci)
                            else None),
            "metrics": self.metrics,
            "raw_yield": self.raw_yield,
            "repaired_yield": self.repaired_yield,
            "defect_counts": dict(sorted(
                self.defect_counts.items())),
            "failures": [{"chunk": f.chunk, "start": f.start,
                          "stop": f.stop, "error": f.error}
                         for f in self.failures],
        }


class SignoffEngine:
    """Plan and run one Monte Carlo signoff.

    Construction resolves a :class:`~repro.session.Session` exactly
    like the other engines (``tech``/``jobs``/``cache`` shims
    accepted).  Typical use::

        engine = SignoffEngine(session, memory_type="8T", words=16,
                               bits=10, n_samples=2000,
                               ci_target=0.01)
        report = engine.run()      # resumable, early-stopping
        print(report.render())
    """

    def __init__(self, session: Optional[Session] = None, *,
                 tech=None, jobs: Optional[int] = None, cache=None,
                 spec: Optional[BrickSpec] = None,
                 memory_type: str = "8T", words: int = 16,
                 bits: int = 10, stack: int = 1,
                 n_samples: int = DEFAULT_SAMPLES,
                 chunk_size: int = DEFAULT_CHUNK,
                 ci_target: Optional[float] = None,
                 corners: Sequence[str] = DEFAULT_CORNERS,
                 model: Optional[VariationModel] = None,
                 defects: Optional[DefectModel] = None,
                 repair: Optional[RepairPlan] = None) -> None:
        self.session = Session.ensure(session, tech=tech, jobs=jobs,
                                      cache=cache)
        self.spec = spec if spec is not None else BrickSpec(
            memory_type, words, bits)
        if stack < 1:
            raise SignoffError(f"stack must be >= 1, got {stack}")
        if n_samples < 1:
            raise SignoffError(
                f"n_samples must be >= 1, got {n_samples}")
        if chunk_size < 1:
            raise SignoffError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if ci_target is not None and not ci_target > 0.0:
            raise SignoffError(
                f"ci_target must be > 0, got {ci_target}")
        self.corners = tuple(corners)
        if not self.corners:
            raise SignoffError("need at least one corner")
        for name in self.corners:
            corner(name)  # raises on unknown names
        self.stack = stack
        self.n_samples = n_samples
        self.chunk_size = chunk_size
        self.ci_target = ci_target
        self.model = model if model is not None else VariationModel()
        self.defects = (defects if defects is not None
                        else DefectModel())
        self.repair = repair if repair is not None else RepairPlan()
        self._plan: Optional[SignoffPlan] = None
        self._resumed = 0

    # -- planning ----------------------------------------------------

    def plan(self) -> SignoffPlan:
        """Lay out and fingerprint the run (pure, cached)."""
        if self._plan is not None:
            return self._plan
        session = self.session
        salt = f"signoff:{self.spec.name}:s{self.stack}"
        key = streams.stream_key(session.seed, salt)
        chunks = tuple(chunk_bounds(self.n_samples, self.chunk_size))
        fp = cache_key(
            "signoff-plan", self.spec, self.stack, self.n_samples,
            self.chunk_size, self.ci_target, list(self.corners),
            self.model, self.defects, self.repair, session.tech,
            session.seed)
        self._plan = SignoffPlan(
            spec=self.spec, stack=self.stack,
            n_samples=self.n_samples, chunk_size=self.chunk_size,
            ci_target=self.ci_target, corners=self.corners,
            model=self.model, defects=self.defects,
            repair=self.repair, seed=session.seed, stream_key=key,
            chunks=chunks, fingerprint=fp)
        return self._plan

    # -- execution ---------------------------------------------------

    def run(self, keep_going: bool = False, resume: bool = True,
            progress: Optional[ProgressCallback] = None
            ) -> SignoffReport:
        """Stream the sample chunks and reduce to a report.

        ``resume=True`` (default) reuses per-chunk checkpoints from
        the session cache — a killed run only re-prices chunks that
        never completed.  ``keep_going`` converts chunk-worker crashes
        into :class:`ChunkFailure` records.  The early-stop rule
        evaluates the contiguous chunk prefix in index order, so the
        stopping point (and therefore the report) is identical at any
        worker count or resume history.
        """
        plan = self.plan()
        session = self.session
        cache = session.cache
        bases = self._corner_bases()
        lead = bases[plan.corners[0]]["read_delay"]
        watch = Stopwatch()
        collected: Dict[int, Union[ChunkResult, ChunkFailure]] = {}
        self._resumed = 0
        done = 0

        # Early-stop bookkeeping over the contiguous chunk prefix.
        state = {"evaluated": 0, "n": 0, "sum": 0.0, "sumsq": 0.0,
                 "achieved": float("inf"), "stop_at": None}

        def fold_prefix() -> None:
            """Extend the evaluated prefix while chunks are ready."""
            while (state["stop_at"] is None
                   and state["evaluated"] in collected):
                record = collected[state["evaluated"]]
                if isinstance(record, ChunkResult):
                    delay = (lead * record.r_scale * record.c_scale
                             * record.derate)
                    state["n"] += delay.shape[0]
                    state["sum"] += float(delay.sum())
                    state["sumsq"] += float((delay * delay).sum())
                state["evaluated"] += 1
                state["achieved"] = ci_half_width(
                    state["n"], state["sum"], state["sumsq"])
                if session.metrics is not None and np.isfinite(
                        state["achieved"]):
                    session.metrics.gauge("signoff.ci_width").set(
                        state["achieved"])
                if (plan.ci_target is not None
                        and state["achieved"] <= plan.ci_target):
                    state["stop_at"] = state["evaluated"]

        with maybe_span(session.tracer, "signoff", kind="signoff",
                        spec=plan.spec.name, stack=plan.stack,
                        n_samples=plan.n_samples,
                        chunks=plan.n_chunks) as span:
            todo: List[int] = []
            for index in range(plan.n_chunks):
                if resume and cache is not None:
                    hit, value = cache.get(
                        chunk_checkpoint_key(plan.fingerprint,
                                             keep_going, index),
                        expect=(ChunkResult, ChunkFailure))
                    if hit:
                        done += 1
                        self._resumed += 1
                        collected[index] = value
                        self._note_chunk(value, resumed=True)
                        if progress is not None:
                            progress(done, plan.n_chunks, value)
                        fold_prefix()
                        continue
                todo.append(index)
            if span is not None:
                span.attrs.update(resumed_chunks=self._resumed)
            if state["stop_at"] is None and todo:
                tasks = [(plan.spec, plan.model, plan.defects,
                          plan.repair, index, plan.chunks[index][0],
                          plan.chunks[index][1], plan.stream_key)
                         for index in todo]
                on_fault = _executor_fault_sink(session.sink)
                tap = (TraceTap.for_span(session.tracer, span)
                       if span is not None else None)
                for position, result in parallel_imap(
                        _chunk_worker, tasks, jobs=session.jobs,
                        pool=session.pool, on_fault=on_fault,
                        return_errors=keep_going, trace=tap):
                    index = todo[position]
                    if isinstance(result, TaskFailure):
                        start, stop = plan.chunks[index]
                        record: Union[ChunkResult, ChunkFailure] = \
                            ChunkFailure(chunk=index, start=start,
                                         stop=stop,
                                         error=result.error)
                    else:
                        record = result
                    done += 1
                    collected[index] = record
                    if cache is not None:
                        cache.put(chunk_checkpoint_key(
                            plan.fingerprint, keep_going, index),
                            record)
                    self._note_chunk(record, resumed=False)
                    if progress is not None:
                        progress(done, plan.n_chunks, record)
                    fold_prefix()
                    if state["stop_at"] is not None:
                        break  # generator close shuts the pool down
            if span is not None:
                span.attrs.update(chunks_done=done,
                                  early_stopped=state["stop_at"]
                                  is not None)
        used = (state["stop_at"] if state["stop_at"] is not None
                else plan.n_chunks)
        return self._reduce(plan, bases, collected, used,
                            state["achieved"],
                            state["stop_at"] is not None,
                            watch.elapsed())

    # -- internals ---------------------------------------------------

    def _corner_bases(self) -> Dict[str, Dict[str, float]]:
        """Price the brick once per corner (cached, scalar path).

        Every per-sample metric is these bases times pure scale
        columns, per the closed-form scaling law: delay ~ r*c,
        energy ~ c*v^2, leakage ~ l*v.
        """
        session = self.session
        bases: Dict[str, Dict[str, float]] = {}
        for name in self.corners:
            tech = corner(name).apply(session.tech)
            perf = cached_estimate(self.spec, tech, self.stack,
                                   cache=session.cache)
            bases[name] = {
                "read_delay": perf.read_delay,
                "read_energy": perf.read_energy,
                "write_energy": perf.write_energy,
                "leakage_w": perf.leakage_w,
            }
        return bases

    def _note_chunk(self, record, resumed: bool) -> None:
        """Per-chunk observability: span + counters + fault events."""
        session = self.session
        failed = isinstance(record, ChunkFailure)
        if session.tracer is not None:
            pspan = session.tracer.open(
                f"chunk[{record.start}:{record.stop}]",
                kind="signoff_chunk", chunk=record.chunk,
                resumed=resumed, failed=failed)
            session.tracer.close(pspan, ok=not failed)
        if session.metrics is not None:
            session.metrics.counter("signoff.chunks_done").inc()
            if resumed:
                session.metrics.counter(
                    "signoff.chunks_resumed").inc()
            if not failed:
                session.metrics.counter("signoff.samples").inc(
                    record.n_samples)
        if failed and not resumed:
            session.emit(FaultEvent(
                domain="signoff", name=record.label,
                index=record.chunk, error=record.error,
                recovered=True))

    def _reduce(self, plan: SignoffPlan,
                bases: Dict[str, Dict[str, float]],
                collected: Dict[int,
                                Union[ChunkResult, ChunkFailure]],
                used: int, achieved: float, early_stopped: bool,
                wall_clock_s: float) -> SignoffReport:
        """Assemble the evaluated prefix into the final report."""
        results: List[ChunkResult] = []
        failures: List[ChunkFailure] = []
        for index in range(used):
            record = collected.get(index)
            if record is None:
                raise SignoffError(
                    f"chunk {index} never completed "
                    f"(of {used} evaluated)")
            if isinstance(record, ChunkFailure):
                failures.append(record)
            else:
                results.append(record)
        if not results:
            raise SignoffError(
                f"every signoff chunk failed ({len(failures)} "
                f"failures; first: {failures[0].error})"
                if failures else "signoff evaluated no chunks")
        cat = {name: np.concatenate(
            [getattr(r, name) for r in results])
            for name in ("r_scale", "c_scale", "vdd_scale",
                         "leak_scale", "derate", "raw_ok",
                         "repaired_ok")}
        samples_ok = int(cat["derate"].shape[0])
        samples_used = sum(
            stop - start for start, stop in plan.chunks[:used])
        boot_key = streams.stream_key(
            plan.seed,
            f"signoff-boot:{plan.spec.name}:s{plan.stack}")
        # One paired-bootstrap index matrix shared by every metric:
        # generating the resample stream dominates the reduction, and
        # shared resamples make the CIs comparable across metrics.
        boot_idx = (streams.resample_indices(boot_key, samples_ok,
                                             n_boot=N_BOOT)
                    if samples_ok > 1 else None)
        v2 = cat["vdd_scale"] * cat["vdd_scale"]
        metrics: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name in plan.corners:
            base = bases[name]
            columns = {
                "read_delay": (base["read_delay"] * cat["r_scale"]
                               * cat["c_scale"] * cat["derate"]),
                "read_energy": (base["read_energy"]
                                * cat["c_scale"] * v2),
                "write_energy": (base["write_energy"]
                                 * cat["c_scale"] * v2),
                "leakage_w": (base["leakage_w"] * cat["leak_scale"]
                              * cat["vdd_scale"]),
            }
            metrics[name] = {}
            for metric in REPORT_METRICS:
                metrics[name][metric] = summarize(
                    columns[metric], key=boot_key, idx=boot_idx)
        raw_yield = proportion_summary(cat["raw_ok"], boot_key,
                                       idx=boot_idx)
        repaired_yield = proportion_summary(cat["repaired_ok"],
                                            boot_key, idx=boot_idx)
        defect_counts: Dict[str, int] = {}
        for record in results:
            for kind, count in record.defect_counts.items():
                defect_counts[kind] = (defect_counts.get(kind, 0)
                                       + count)
        session = self.session
        return SignoffReport(
            spec_name=plan.spec.name,
            memory_type=plan.spec.memory_type,
            words=plan.spec.words, bits=plan.spec.bits,
            stack=plan.stack, tech_name=session.tech.name,
            seed=plan.seed, n_samples=plan.n_samples,
            chunk_size=plan.chunk_size, ci_target=plan.ci_target,
            corners=plan.corners, samples_used=samples_used,
            samples_ok=samples_ok, chunks_total=plan.n_chunks,
            chunks_used=used, resumed_chunks=self._resumed,
            early_stopped=early_stopped, achieved_ci=achieved,
            metrics=metrics, raw_yield=raw_yield,
            repaired_yield=repaired_yield,
            defect_counts=defect_counts, failures=failures,
            wall_clock_s=wall_clock_s)


def run_signoff(session: Optional[Session] = None,
                **kwargs) -> SignoffReport:
    """One-call convenience: build an engine and run it.

    ``keep_going``/``resume``/``progress`` route to
    :meth:`SignoffEngine.run`; everything else to the constructor.
    """
    run_args = {name: kwargs.pop(name)
                for name in ("keep_going", "resume", "progress")
                if name in kwargs}
    return SignoffEngine(session, **kwargs).run(**run_args)

"""Statistical signoff: Monte Carlo PVT variation x defect yield.

The production answer to "will this brick meet timing/energy/yield
across real silicon?" — an N-thousand-sample Monte Carlo over
process/voltage/temperature perturbations crossed with manufacturing
defects and the corner grid, reduced to P50/P95/P99.9 distributions
with bootstrap confidence intervals.  Chunked, checkpointed,
resumable, early-stopping; see :mod:`repro.signoff.engine`.
"""

from .engine import (
    DEFAULT_CHUNK,
    DEFAULT_CORNERS,
    DEFAULT_SAMPLES,
    ChunkFailure,
    ChunkResult,
    SignoffEngine,
    SignoffPlan,
    SignoffReport,
    chunk_bounds,
    chunk_checkpoint_key,
    run_signoff,
)
from .rng import normals, resample_indices, stream_key, uniforms
from .sampling import pvt_columns
from .stats import (
    bootstrap_mean_ci,
    ci_half_width,
    proportion_summary,
    summarize,
)

__all__ = [
    "DEFAULT_CHUNK", "DEFAULT_CORNERS", "DEFAULT_SAMPLES",
    "ChunkFailure", "ChunkResult", "SignoffEngine", "SignoffPlan",
    "SignoffReport", "chunk_bounds", "chunk_checkpoint_key",
    "run_signoff", "normals", "resample_indices", "stream_key",
    "uniforms", "pvt_columns", "bootstrap_mean_ci", "ci_half_width",
    "proportion_summary", "summarize",
]

"""Vectorized process/voltage/temperature perturbation sampling.

The scalar :meth:`repro.silicon.variation.VariationModel.sample` draws
one die at a time from a sequential ``random.Random`` — fine for the
eight-chip Fig. 4b emulation, unusable for an N-thousand-sample Monte
Carlo.  This module draws the same lognormal distributions as numpy
column operations over the counter-based streams of
:mod:`repro.signoff.rng`: every sample's scales are a pure function of
``(master seed, salt, global sample index)``, so any chunk of the
population can be generated independently and the result is identical
at any chunking or worker count.

The five per-sample draws mirror the scalar sampler's structure:
``exp(N(0, sigma))`` on device resistance, capacitance and supply, a
leakage term anti-correlated with R (fast silicon leaks more), and a
multiplicative tester-noise term.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..silicon.variation import VariationModel
from .rng import normals

#: Lognormal sigma of the leakage residual (matches the scalar
#: sampler's ``rng.gauss(0.0, 0.2)`` term).
LEAK_SIGMA = 0.2

#: Leakage/resistance anti-correlation exponent (``exp(-2 ln r)``).
LEAK_R_EXPONENT = -2.0

#: Draw columns, in stream order.
DRAW_NAMES = ("r", "c", "vdd", "leak", "noise")


def pvt_columns(model: VariationModel, key: int, start: int,
                stop: int) -> Dict[str, np.ndarray]:
    """Draw PVT scale columns for global samples ``[start, stop)``.

    Returns ``r_scale``/``c_scale``/``vdd_scale``/``leak_scale``/
    ``noise`` float columns of length ``stop - start``.  Sample ``i``'s
    values depend only on ``(key, start + i)``: generating the whole
    population at once or in arbitrary chunks is bit-identical.
    """
    g = normals(key, start, stop, len(DRAW_NAMES))
    r_scale = np.exp(g[:, 0] * model.sigma_r)
    c_scale = np.exp(g[:, 1] * model.sigma_c)
    vdd_scale = np.exp(g[:, 2] * model.sigma_vdd)
    leak_scale = np.exp(LEAK_R_EXPONENT * np.log(r_scale)
                        + g[:, 3] * LEAK_SIGMA)
    noise = np.exp(g[:, 4] * model.sigma_measure)
    return {
        "r_scale": r_scale,
        "c_scale": c_scale,
        "vdd_scale": vdd_scale,
        "leak_scale": leak_scale,
        "noise": noise,
    }

"""Deterministic, vectorized, counter-based sample streams.

The signoff engine draws millions of random variates whose values must
be a pure function of ``(master seed, salt, global sample index)`` —
independent of chunking, ``--jobs``, completion order, and resume
boundaries.  Sequential generators (``random.Random``,
``numpy.random.Generator``) cannot give that: their draw count per
sample varies (ziggurat normals) and their state threads through every
preceding sample.

This module implements a *counter-based* generator instead: each
variate is ``mix(key + counter)`` where ``mix`` is the splitmix64
finalizer (Steele, Lea & Flood 2014; the same mixer ``java.util
.SplittableRandom`` and numpy's ``SeedSequence`` build on).  Counters
are ``sample_index * draws_per_sample + draw``, so any slice of samples
can be generated in isolation as pure numpy ``uint64`` array ops —
chunk workers never share state.  Normals come from Box–Muller (exact
two-uniforms-per-normal consumption, unlike the variable-draw
ziggurat), keeping the stream layout static.

Keys are derived by SHA-256 over ``"{seed}:{salt}"`` — the same
string-salting convention as :meth:`repro.session.Session.rng` — so
distinct salts give independent streams from one master seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: splitmix64 constants (64-bit golden-ratio increment + finalizer).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TO_UNIT = float(2.0 ** -53)


def stream_key(seed: int, salt: str) -> int:
    """A 64-bit stream key from the master seed and a salt string.

    SHA-256 based, so nearby seeds and similar salts land in unrelated
    regions of the counter space (splitmix64's mixer alone is not an
    avalanche-quality key schedule for adversarially close keys).
    """
    digest = hashlib.sha256(f"{seed}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _mix(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over ``uint64`` arrays."""
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def uniforms(key: int, counters: np.ndarray) -> np.ndarray:
    """Uniform variates in ``(0, 1]`` at the given stream counters.

    ``counters`` is any ``uint64``-convertible array; element ``i`` of
    the result depends only on ``(key, counters[i])``.  The half-open
    interval excludes 0 so ``log(u)`` is always finite.
    """
    counters = np.asarray(counters, dtype=np.uint64)
    z = _mix(np.uint64(key) + (counters + np.uint64(1)) * _GAMMA)
    return ((z >> np.uint64(11)) + np.uint64(1)).astype(np.float64) \
        * _TO_UNIT


def normals(key: int, start: int, stop: int,
            n_draws: int) -> np.ndarray:
    """Standard-normal draws for samples ``[start, stop)``.

    Returns shape ``(stop - start, n_draws)``: row ``i`` holds the
    draws of global sample ``start + i``, each a pure function of
    ``(key, start + i, draw)`` — generating ``[0, 1000)`` in one call
    or ten 100-sample chunks yields bit-identical values.
    """
    if stop < start:
        raise ValueError(f"empty stream slice [{start}, {stop})")
    n = stop - start
    if n == 0 or n_draws == 0:
        return np.zeros((n, n_draws))
    index = np.arange(start, stop, dtype=np.uint64)[:, None]
    draw = np.arange(n_draws, dtype=np.uint64)[None, :]
    # Two uniform counters per normal, interleaved per (sample, draw).
    base = index * np.uint64(2 * n_draws) + draw * np.uint64(2)
    u1 = uniforms(key, base)
    u2 = uniforms(key, base + np.uint64(1))
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def resample_indices(key: int, n_values: int, n_boot: int,
                     block: int = 0) -> np.ndarray:
    """Bootstrap resampling indices: ``(n_boot, n_values)`` ints in
    ``[0, n_values)``, deterministic in ``(key, block)``.

    ``block`` offsets the counter space so several independent
    bootstrap passes (one per metric) can share one key.
    """
    if n_values < 1:
        raise ValueError("need at least one value to resample")
    total = n_boot * n_values
    offset = np.uint64(block) * np.uint64(0x1000000000)
    counters = offset + np.arange(total, dtype=np.uint64)
    u = uniforms(key, counters)
    # u is in (0, 1]; flip to [0, 1) so the floor never reaches n.
    idx = np.floor((1.0 - u) * n_values).astype(np.int64)
    return idx.reshape(n_boot, n_values)

"""Distribution reductions for the signoff report.

Percentiles (P50/P95/P99.9), normal-approximation confidence
half-widths (the early-stop criterion) and deterministic bootstrap
confidence intervals over the mean.  Everything here is a pure
function of the input arrays (in global sample-index order) plus a
stream key, so two runs that assembled the same samples — regardless
of chunking, worker count, or kill/resume history — reduce to
byte-identical statistics.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from .rng import resample_indices

#: Report percentiles (the P50/P95/P99.9 the roadmap asks for).
PERCENTILES = (50.0, 95.0, 99.9)

#: Bootstrap resamples per confidence interval.
N_BOOT = 200

#: z-score of the two-sided 95 % normal interval.
Z95 = 1.959963984540054


def ci_half_width(n: int, total: float, total_sq: float) -> float:
    """Relative 95 % half-width of the mean from running sums.

    ``1.96 * s / (sqrt(n) * mean)`` with the sample variance computed
    from ``(n, sum, sum of squares)`` — the incremental form the
    early-stop rule evaluates as chunk sums accumulate in index order.
    Returns ``inf`` when the mean is not yet resolvable (n < 2 or a
    non-positive mean).
    """
    if n < 2:
        return math.inf
    mean = total / n
    if mean <= 0.0:
        return math.inf
    var = (total_sq - total * total / n) / (n - 1)
    if var < 0.0:  # float cancellation on near-constant data
        var = 0.0
    return Z95 * math.sqrt(var / n) / mean


def bootstrap_mean_ci(values: np.ndarray, key: int,
                      block: int = 0,
                      n_boot: int = N_BOOT,
                      idx: Optional[np.ndarray] = None
                      ) -> Dict[str, float]:
    """Deterministic bootstrap 95 % CI of the mean.

    Resampling indices come from the counter stream at ``(key,
    block)``, so the interval is reproducible and independent of how
    the values were produced.  Degenerate inputs (n == 1) collapse the
    interval onto the value.

    Generating the index stream dominates the cost, so a caller
    reducing many same-length metrics may pass a precomputed ``idx``
    (from :func:`~repro.signoff.rng.resample_indices`) — the *paired*
    bootstrap: every metric's CI uses the same resamples, which also
    makes the intervals directly comparable across metrics.
    """
    n = int(values.shape[0])
    if n == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if n == 1:
        v = float(values[0])
        return {"lo": v, "hi": v}
    if idx is None:
        idx = resample_indices(key, n, n_boot, block=block)
    means = values[idx].mean(axis=1)
    lo, hi = np.percentile(means, (2.5, 97.5))
    return {"lo": float(lo), "hi": float(hi)}


def summarize(values: np.ndarray, key: Optional[int] = None,
              block: int = 0,
              idx: Optional[np.ndarray] = None) -> Dict[str, float]:
    """Mean, report percentiles and (when ``key`` given) bootstrap CI.

    ``values`` must be in global sample-index order; the summary is
    then invariant to the chunking that produced them.  ``idx``
    forwards to :func:`bootstrap_mean_ci` (paired bootstrap).
    """
    if values.shape[0] == 0:
        raise ValueError("cannot summarize an empty sample")
    p50, p95, p999 = np.percentile(values, PERCENTILES)
    out = {
        "mean": float(values.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99_9": float(p999),
    }
    if key is not None:
        ci = bootstrap_mean_ci(values, key, block=block, idx=idx)
        out["ci_lo"] = ci["lo"]
        out["ci_hi"] = ci["hi"]
    return out


def proportion_summary(flags: np.ndarray, key: int,
                       block: int = 0,
                       idx: Optional[np.ndarray] = None
                       ) -> Dict[str, float]:
    """Yield-style summary of a boolean column: rate + bootstrap CI."""
    values = flags.astype(np.float64)
    ci = bootstrap_mean_ci(values, key, block=block, idx=idx)
    return {"rate": float(values.mean()),
            "ci_lo": ci["lo"], "ci_hi": ci["hi"]}

"""Exception hierarchy for the LiM synthesis reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at flow boundaries while still telling the
failure domains apart.

Each subclass also names a **failure domain** and carries a distinct
process exit code (:func:`exit_code_for`): the CLI maps any uncaught
:class:`ReproError` to its domain's code, so shell scripts driving
``python -m repro`` can branch on *where* the flow failed without
parsing stderr.
"""

from __future__ import annotations

from typing import Tuple, Type


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SessionError(ReproError):
    """Invalid session construction or stage-pipeline definition."""


class TechnologyError(ReproError):
    """Invalid or inconsistent technology parameters."""


class PatternError(ReproError):
    """Invalid pattern-construct definition or layout pattern grid."""


class NetlistError(ReproError):
    """Malformed circuit netlist (dangling nets, duplicate devices, ...)."""


class SizingError(ReproError):
    """Logical-effort sizing failure (no feasible sizing, bad path)."""


class SimulationError(ReproError):
    """Transient/logic simulation failure (non-convergence, bad stimulus)."""


class LayoutError(ReproError):
    """Brick or block layout generation failure."""


class LibraryError(ReproError):
    """Library model generation or lookup failure."""


class BrickError(ReproError):
    """Invalid brick specification or compilation failure."""


class RTLError(ReproError):
    """Structural RTL construction or elaboration failure."""


class SynthesisError(ReproError):
    """Technology mapping / physical synthesis failure."""


class TimingError(ReproError):
    """Static timing analysis failure (combinational loop, missing arc)."""


class PowerError(ReproError):
    """Power analysis failure (missing activity, missing energy model)."""


class ExplorationError(ReproError):
    """Design-space exploration failure (empty sweep, bad objective)."""


class SiliconError(ReproError):
    """Silicon-emulation failure (measurement did not converge)."""


class SparseError(ReproError):
    """Sparse-matrix construction or algebra failure."""


class AcceleratorError(ReproError):
    """SpGEMM accelerator simulation failure (capacity overflow, ...)."""


class FaultError(ReproError):
    """Invalid defect model, defect sample or fault-injection request."""


class YieldError(ReproError):
    """Yield/repair analysis failure (empty population, bad plan)."""


class ExecutorError(ReproError):
    """Parallel-executor failure that survived retry and the serial
    fallback (the wrapped cause is the task's own exception)."""


class ProtocolError(ReproError):
    """Malformed, oversized or wrong-version wire frame (repro.serve)."""


class ServeError(ReproError):
    """Brick-library server/client failure (connection refused, busy
    after retries, server-side internal error relayed to the client)."""


class SignoffError(ReproError):
    """Statistical signoff failure (bad plan parameters, every sample
    chunk lost, an incomplete chunk prefix at reduction time)."""


#: Domain exit codes, one per concrete error class.  Codes are stable
#: API: scripts branch on them, so entries are appended, never renumbered.
#: 1 stays the generic ``ReproError`` catch-all; 2 is argparse's usage
#: error and is deliberately skipped.
EXIT_CODES: Tuple[Tuple[Type[ReproError], int], ...] = (
    (SessionError, 10),
    (TechnologyError, 11),
    (PatternError, 12),
    (NetlistError, 13),
    (SizingError, 14),
    (SimulationError, 15),
    (LayoutError, 16),
    (LibraryError, 17),
    (BrickError, 18),
    (RTLError, 19),
    (SynthesisError, 20),
    (TimingError, 21),
    (PowerError, 22),
    (ExplorationError, 23),
    (SiliconError, 24),
    (SparseError, 25),
    (AcceleratorError, 26),
    (FaultError, 27),
    (YieldError, 28),
    (ExecutorError, 29),
    (ProtocolError, 30),
    (ServeError, 31),
    (SignoffError, 32),
)


def failure_domain(exc: ReproError) -> str:
    """Short domain name of an error (``BrickError`` -> ``brick``)."""
    name = type(exc).__name__
    if name.endswith("Error"):
        name = name[: -len("Error")]
    return name.lower() or "repro"


def exit_code_for(exc: ReproError) -> int:
    """The CLI exit code for ``exc``: its exact class's registered code,
    else the nearest registered base class, else the generic 1."""
    for klass, code in EXIT_CODES:
        if type(exc) is klass:
            return code
    for klass, code in EXIT_CODES:
        if isinstance(exc, klass):
            return code
    return 1

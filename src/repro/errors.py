"""Exception hierarchy for the LiM synthesis reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at flow boundaries while still telling the
failure domains apart.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SessionError(ReproError):
    """Invalid session construction or stage-pipeline definition."""


class TechnologyError(ReproError):
    """Invalid or inconsistent technology parameters."""


class PatternError(ReproError):
    """Invalid pattern-construct definition or layout pattern grid."""


class NetlistError(ReproError):
    """Malformed circuit netlist (dangling nets, duplicate devices, ...)."""


class SizingError(ReproError):
    """Logical-effort sizing failure (no feasible sizing, bad path)."""


class SimulationError(ReproError):
    """Transient/logic simulation failure (non-convergence, bad stimulus)."""


class LayoutError(ReproError):
    """Brick or block layout generation failure."""


class LibraryError(ReproError):
    """Library model generation or lookup failure."""


class BrickError(ReproError):
    """Invalid brick specification or compilation failure."""


class RTLError(ReproError):
    """Structural RTL construction or elaboration failure."""


class SynthesisError(ReproError):
    """Technology mapping / physical synthesis failure."""


class TimingError(ReproError):
    """Static timing analysis failure (combinational loop, missing arc)."""


class PowerError(ReproError):
    """Power analysis failure (missing activity, missing energy model)."""


class ExplorationError(ReproError):
    """Design-space exploration failure (empty sweep, bad objective)."""


class SiliconError(ReproError):
    """Silicon-emulation failure (measurement did not converge)."""


class SparseError(ReproError):
    """Sparse-matrix construction or algebra failure."""


class AcceleratorError(ReproError):
    """SpGEMM accelerator simulation failure (capacity overflow, ...)."""

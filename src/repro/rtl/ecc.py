"""SEC-DED (Hamming + overall parity) error-correcting memory wrapper.

The yield/repair layer (:mod:`repro.faults`) can extend every stored
word with check bits so a single stuck bitcell per word no longer kills
the brick.  This module provides that extension end to end: the check-
bit arithmetic (:func:`secded_parity_bits`), bit-accurate reference
encode/decode (:func:`secded_encode` / :func:`secded_decode`), and
structural encoder/decoder generators mapped to standard cells so the
area/energy/delay overhead of ECC flows through the normal library and
synthesis models rather than being hand-waved.

The code is the classic (n, k) Hamming layout: check bit *j* guards the
codeword positions whose 1-based index has bit *j* set, and one overall
parity bit over the whole codeword upgrades single-error correction to
double-error detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..bricks.spec import BrickSpec
from ..bricks.stack import BankConfig
from ..errors import RTLError
from .components import and2, and_tree, inv, or_tree, xor2, xor_tree
from .module import Module
from .signals import Bus, Net, as_bus

# --- check-bit arithmetic -------------------------------------------------


def hamming_parity_bits(data_bits: int) -> int:
    """Hamming check bits r such that ``2**r >= data_bits + r + 1``."""
    if data_bits < 1:
        raise RTLError("data width must be >= 1")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


def secded_parity_bits(data_bits: int) -> int:
    """Total SEC-DED check bits: Hamming bits plus one overall parity."""
    return hamming_parity_bits(data_bits) + 1


def _data_positions(data_bits: int) -> List[int]:
    """1-based Hamming codeword position of each data bit, in order.

    Powers of two are reserved for check bits; data bits fill the gaps.
    """
    positions: List[int] = []
    pos = 1
    for _ in range(data_bits):
        while pos & (pos - 1) == 0:
            pos += 1
        positions.append(pos)
        pos += 1
    return positions


def _coverage(data_bits: int) -> List[List[int]]:
    """For each Hamming check bit, the data-bit indices it guards."""
    r = hamming_parity_bits(data_bits)
    positions = _data_positions(data_bits)
    return [[i for i, pos in enumerate(positions) if (pos >> j) & 1]
            for j in range(r)]


# --- bit-accurate reference model -----------------------------------------

#: Decode outcomes, in increasing order of distress.
OK = "ok"
CORRECTED_DATA = "corrected_data"
CORRECTED_CHECK = "corrected_check"
DETECTED_DOUBLE = "detected_double"


@dataclass(frozen=True)
class DecodeResult:
    """Corrected data plus what the decoder had to do to get it."""

    data: Tuple[int, ...]
    status: str

    @property
    def corrected(self) -> bool:
        return self.status in (CORRECTED_DATA, CORRECTED_CHECK)

    @property
    def uncorrectable(self) -> bool:
        return self.status == DETECTED_DOUBLE


def secded_encode(data: Sequence[int]) -> Tuple[int, ...]:
    """Check bits for a data word: r Hamming bits then overall parity."""
    bits = [int(b) & 1 for b in data]
    checks = []
    for covered in _coverage(len(bits)):
        p = 0
        for i in covered:
            p ^= bits[i]
        checks.append(p)
    overall = 0
    for b in bits + checks:
        overall ^= b
    return tuple(checks + [overall])


def secded_decode(data: Sequence[int],
                  checks: Sequence[int]) -> DecodeResult:
    """Correct a stored word given its stored check bits.

    Single flipped bit (data or check) is corrected; two flips are
    detected as :data:`DETECTED_DOUBLE` with the data passed through
    unmodified (the caller must treat it as lost).
    """
    bits = [int(b) & 1 for b in data]
    stored = [int(c) & 1 for c in checks]
    r = hamming_parity_bits(len(bits))
    if len(stored) != r + 1:
        raise RTLError(
            f"expected {r + 1} check bits for {len(bits)} data bits, "
            f"got {len(stored)}")
    fresh = secded_encode(bits)
    syndrome = 0
    for j in range(r):
        if fresh[j] != stored[j]:
            syndrome |= 1 << j
    overall = stored[r]
    for b in bits + stored[:r]:
        overall ^= b
    # overall == 1 means the stored overall parity disagrees with the
    # word as read, i.e. an odd number of bits flipped.
    if syndrome == 0 and overall == 0:
        return DecodeResult(tuple(bits), OK)
    if syndrome == 0:
        return DecodeResult(tuple(bits), CORRECTED_CHECK)
    if overall == 0:
        return DecodeResult(tuple(bits), DETECTED_DOUBLE)
    positions = _data_positions(len(bits))
    if syndrome in positions:
        i = positions.index(syndrome)
        bits[i] ^= 1
        return DecodeResult(tuple(bits), CORRECTED_DATA)
    # The flipped bit was a Hamming check bit: data is intact.
    return DecodeResult(tuple(bits), CORRECTED_CHECK)


# --- structural generators ------------------------------------------------


def build_secded_encoder(data_bits: int) -> Module:
    """XOR-tree encoder: ``d[data_bits]`` in, ``c[r+1]`` check bits out."""
    r = hamming_parity_bits(data_bits)
    m = Module(f"secded_enc_{data_bits}")
    d = as_bus(m.input("d", data_bits))
    c = as_bus(m.output("c", r + 1))
    check_nets: List[Net] = []
    for j, covered in enumerate(_coverage(data_bits)):
        net = xor_tree(m, [d[i] for i in covered], f"chk{j}")
        check_nets.append(net)
        m.alias(c[j], net)
    overall = xor_tree(m, list(d) + check_nets, "ovp")
    m.alias(c[r], overall)
    return m


def build_secded_decoder(data_bits: int) -> Module:
    """Corrector: ``d``/``c`` in, corrected ``q`` plus ``err``/``ded`` out.

    ``err`` pulses for any detected error (corrected or not); ``ded``
    flags an uncorrectable double error.
    """
    r = hamming_parity_bits(data_bits)
    m = Module(f"secded_dec_{data_bits}")
    d = as_bus(m.input("d", data_bits))
    c = as_bus(m.input("c", r + 1))
    q = as_bus(m.output("q", data_bits))
    err = m.output("err")
    ded = m.output("ded")

    syndrome: List[Net] = []
    for j, covered in enumerate(_coverage(data_bits)):
        fresh = xor_tree(m, [d[i] for i in covered], f"rchk{j}")
        syndrome.append(xor2(m, fresh, c[j], f"syn{j}"))
    syndrome_n = [inv(m, s, f"synb{j}") for j, s in enumerate(syndrome)]
    overall = xor_tree(m, list(d) + list(c), "ovchk")
    overall_n = inv(m, overall, "ovb")

    any_syndrome = or_tree(m, syndrome, "anysyn")
    m.alias(err, or_tree(m, [any_syndrome, overall], "anyerr"))
    m.alias(ded, and2(m, any_syndrome, overall_n, "dedg"))

    positions = _data_positions(data_bits)
    for i in range(data_bits):
        terms = [syndrome[j] if (positions[i] >> j) & 1 else syndrome_n[j]
                 for j in range(r)]
        terms.append(overall)
        flip = and_tree(m, terms, f"hit{i}")
        m.alias(q[i], xor2(m, d[i], flip, f"fix{i}"))
    return m


def ecc_bank_config(config: BankConfig) -> BankConfig:
    """The same bank geometry with every word widened by check bits."""
    extra = secded_parity_bits(config.bits)
    brick = BrickSpec(config.brick.memory_type, config.brick.words,
                      config.brick.bits + extra)
    return BankConfig(brick=brick, stack=config.stack,
                      partitions=config.partitions)


def build_ecc_sram(config: BankConfig) -> Module:
    """A :func:`~repro.rtl.memory.build_sram` bank wrapped in SEC-DED.

    The inner SRAM stores ``bits + secded_parity_bits(bits)`` per word;
    writes route through the encoder, reads through the corrector.
    Extra outputs ``err``/``ded`` surface the decoder flags.
    """
    from .memory import build_sram
    data_bits = config.bits
    r = hamming_parity_bits(data_bits)
    inner_config = ecc_bank_config(config)
    inner = build_sram(inner_config)
    enc = build_secded_encoder(data_bits)
    dec = build_secded_decoder(data_bits)

    m = Module(f"ecc_{inner.name}")
    clk = m.input("clk")
    raddr = as_bus(m.input("raddr", config.address_bits))
    waddr = as_bus(m.input("waddr", config.address_bits))
    we = m.input("we")
    din = as_bus(m.input("din", data_bits))
    dout = as_bus(m.output("dout", data_bits))
    err = m.output("err")
    ded = m.output("ded")

    wchecks = as_bus(m.wire("wchecks", r + 1))
    m.instance("enc0", enc, {"d": din, "c": wchecks})
    stored_in = Bus(list(din) + list(wchecks))
    stored_out = as_bus(m.wire("stored", data_bits + r + 1))
    m.instance("mem0", inner, {
        "clk": clk, "raddr": raddr, "waddr": waddr, "we": we,
        "din": stored_in, "dout": stored_out,
    })
    m.instance("dec0", dec, {
        "d": Bus(list(stored_out)[:data_bits]),
        "c": Bus(list(stored_out)[data_bits:]),
        "q": dout, "err": err, "ded": ded,
    })
    return m

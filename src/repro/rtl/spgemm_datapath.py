"""Gate-level SpGEMM update datapath (the Fig. 5 write-back path).

Section 4: "The SRAM brick is designed as a scratch pad with its
customized periphery capable of updating or placing new entries.  For
updating an SRAM entry, a multiply and add block is integrated with a
write-back driver."

:func:`build_update_datapath` synthesizes exactly that periphery around
one value-SRAM brick: on a CAM *hit* the matched entry is read,
multiplied-and-accumulated with the incoming product operands, and
written back; on a *miss* the product is written to a fresh entry.  The
module is fully structural (our standard cells plus one brick macro) and
is functionally verified against Python arithmetic in the tests — the
LiM thesis made concrete: this logic lives where a memory compiler would
put a hard boundary.

Ports
-----
``clk``                     clock
``match_line`` (words)      one-hot CAM match vector (hit when any set)
``free_line`` (words)       one-hot free-slot selector used on a miss
``a_val``, ``b_val``        product operands (each ``value_bits/2`` wide)
``enable``                  process an element this cycle
``value_out`` (value_bits)  the value written back this cycle
"""

from __future__ import annotations

from typing import Tuple

from ..bricks.library import bank_cell_name
from ..bricks.spec import BrickSpec
from ..errors import RTLError
from .components import multiplier, mux2, or_tree, ripple_adder
from .module import Module
from .signals import Bus, as_bus


def build_update_datapath(words: int = 16, value_bits: int = 10
                          ) -> Tuple[Module, BrickSpec]:
    """Build the scratch-pad + MAC write-back periphery of one HCAM.

    Returns the module and the value-SRAM brick spec it instantiates
    (``brick_<words>_<value_bits>`` must be in the elaboration library).
    """
    if value_bits % 2 != 0:
        raise RTLError("value_bits must be even (two half-width "
                       "operands)")
    operand_bits = value_bits // 2
    spec = BrickSpec("8T", words, value_bits)

    m = Module(f"spgemm_update_{words}x{value_bits}")
    clk = m.input("clk")
    match_line = as_bus(m.input("match_line", words))
    free_line = as_bus(m.input("free_line", words))
    a_val = as_bus(m.input("a_val", operand_bits))
    b_val = as_bus(m.input("b_val", operand_bits))
    enable = m.input("enable")
    value_out = as_bus(m.output("value_out", value_bits))

    # Hit when any matchline is set (the mismatch-detect block acting
    # "as a priority decoder for the SRAM brick").
    hit = or_tree(m, list(match_line), prefix="hit")

    # The wordline for this cycle: the matched entry on a hit, the free
    # slot otherwise.
    wordline_bits = [mux2(m, free_line[w], match_line[w], hit,
                          prefix=f"wl{w}")
                     for w in range(words)]
    wordline = Bus(wordline_bits)

    # The scratch-pad value brick: read the matched entry (registered,
    # so the accumulate uses the value read on the previous element of
    # a pipelined stream — the paper's single-cycle loop folds the read
    # and write of *different* entries; same-entry back-to-back updates
    # are the tests' job to check).
    arbl = as_bus(m.wire("arbl", value_bits))
    product = multiplier(m, a_val, b_val, prefix="mac_mul")

    # Accumulate: stored + product (wrap-around on overflow, as the
    # fixed-width silicon datapath would).
    total, _carry = ripple_adder(m, arbl, product, prefix="mac_add")

    # Write-back value: accumulated on hit, bare product on miss.
    wb_bits = [mux2(m, product[i], total[i], hit, prefix=f"wb{i}")
               for i in range(value_bits)]
    writeback = Bus(wb_bits)

    m.cell("value_sram", bank_cell_name(spec, 1), {
        "CLK": clk,
        "RWL": wordline,
        "WWL": wordline,
        "WBL": writeback,
        "WE": enable,
        "ARBL": arbl,
    })
    m.alias(value_out, writeback)
    return m, spec


def update_datapath_reference(stored: int, a: int, b: int,
                              hit: bool, value_bits: int = 10) -> int:
    """Python semantics of one datapath step (for verification)."""
    mask = (1 << value_bits) - 1
    product = (a * b) & mask
    return (stored + product) & mask if hit else product

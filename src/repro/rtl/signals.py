"""Nets and buses for the structural RTL layer.

The paper describes smart memories "in RTL" and synthesizes them with
commercial tools; our RTL is a Python-embedded structural netlist — the
same role the "Chip Generator" object-oriented tools of reference [13]
play.  A :class:`Net` is a single-bit wire; a :class:`Bus` is an ordered
list of nets with Verilog-style indexing (bit 0 is the LSB).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Union

from ..errors import RTLError


class Net:
    """A single-bit net inside one module."""

    __slots__ = ("name", "module_name")

    def __init__(self, name: str, module_name: str):
        if not name:
            raise RTLError("net name must be non-empty")
        self.name = name
        self.module_name = module_name

    def __repr__(self) -> str:
        return f"Net({self.module_name}.{self.name})"


class Bus:
    """An ordered collection of nets (LSB first)."""

    def __init__(self, nets: Sequence[Net]):
        if not nets:
            raise RTLError("bus must contain at least one net")
        self._nets: List[Net] = list(nets)

    @property
    def width(self) -> int:
        return len(self._nets)

    def __len__(self) -> int:
        return len(self._nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self._nets)

    def __getitem__(self, index) -> Union[Net, "Bus"]:
        if isinstance(index, slice):
            return Bus(self._nets[index])
        return self._nets[index]

    def bits(self) -> List[Net]:
        return list(self._nets)

    def __repr__(self) -> str:
        return f"Bus({self._nets[0].name}..{self._nets[-1].name})"


#: Anything connectable to a 1-bit pin.
Bit = Net
#: Anything connectable to a port: a net or a bus.
Signal = Union[Net, Bus]


def as_bus(signal: Signal) -> Bus:
    """Coerce a signal to a bus (a net becomes a 1-bit bus)."""
    if isinstance(signal, Bus):
        return signal
    if isinstance(signal, Net):
        return Bus([signal])
    raise RTLError(f"not a signal: {signal!r}")


def signal_width(signal: Signal) -> int:
    if isinstance(signal, Net):
        return 1
    if isinstance(signal, Bus):
        return signal.width
    raise RTLError(f"not a signal: {signal!r}")


def int_to_bits(value: int, width: int) -> List[bool]:
    """Little-endian bit expansion of a non-negative integer."""
    if value < 0:
        raise RTLError("only non-negative constants supported")
    if value >= (1 << width):
        raise RTLError(f"constant {value} does not fit in {width} bits")
    return [(value >> i) & 1 == 1 for i in range(width)]


def bits_to_int(bits: Sequence[bool]) -> int:
    """Little-endian bits to integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value

"""Structural Verilog emission.

The paper integrates bricks "by Verilog modules at the RTL"; this emitter
writes the hierarchy in synthesizable structural Verilog so a generated
design can be inspected in the exchange format (Fig. 3 shows exactly such
a listing).  Output is gate-level: library cells appear as module
instantiations with named port connections.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from ..errors import RTLError
from .module import IN, Module
from .signals import Bus, Net, as_bus

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _vname(name: str) -> str:
    """Sanitize a net/instance name into a Verilog identifier."""
    clean = name.replace("[", "_").replace("]", "").replace(".", "_")
    if _ID_RE.match(clean):
        return clean
    return "\\" + name + " "


def _bus_names(module: Module) -> Dict[str, str]:
    """Map every net name to its Verilog expression.

    Port buses keep Verilog vector indexing (``raddr[3]``); internal nets
    are flattened to scalar identifiers.
    """
    result: Dict[str, str] = {}
    port_nets: Set[str] = set()
    for port in module.ports.values():
        bus = as_bus(port.signal)
        if isinstance(port.signal, Net):
            result[port.signal.name] = _vname(port.name)
            port_nets.add(port.signal.name)
        else:
            for i, net in enumerate(bus):
                result[net.name] = f"{_vname(port.name)}[{i}]"
                port_nets.add(net.name)
    return result


def emit_module(module: Module) -> str:
    """Render one module (no recursion) as Verilog text."""
    names = _bus_names(module)
    lines: List[str] = []
    port_decls = []
    for port in module.ports.values():
        direction = "input" if port.direction == IN else "output"
        if port.width == 1:
            port_decls.append(f"  {direction} {_vname(port.name)}")
        else:
            port_decls.append(
                f"  {direction} [{port.width - 1}:0] "
                f"{_vname(port.name)}")
    lines.append(f"module {_vname(module.name)} (")
    lines.append(",\n".join(port_decls))
    lines.append(");")

    def expr(net: Net) -> str:
        if net.name in names:
            return names[net.name]
        wire_name = _vname(net.name)
        names[net.name] = wire_name
        declared.append(wire_name)
        return wire_name

    declared: List[str] = []
    body: List[str] = []
    for net, value in module.constants.items():
        body.append(f"  assign {expr(net)} = 1'b{int(value)};")
    for net_a, net_b in module.aliases:
        body.append(f"  assign {expr(net_a)} = {expr(net_b)};")
    for ref in module.cells:
        conns = []
        for pin, signal in sorted(ref.conns.items()):
            if isinstance(signal, Bus):
                bits = ", ".join(expr(net)
                                 for net in reversed(signal.bits()))
                conns.append(f".{_vname(pin)}({{{bits}}})")
            else:
                conns.append(f".{_vname(pin)}({expr(signal)})")
        body.append(f"  {_vname(ref.cell_type)} {_vname(ref.name)} "
                    f"({', '.join(conns)});")
    for child in module.children:
        conns = []
        for port_name, signal in sorted(child.conns.items()):
            bus = as_bus(signal)
            if bus.width == 1:
                conns.append(f".{_vname(port_name)}({expr(bus[0])})")
            else:
                bits = ", ".join(expr(net)
                                 for net in reversed(bus.bits()))
                conns.append(f".{_vname(port_name)}({{{bits}}})")
        body.append(f"  {_vname(child.module.name)} {_vname(child.name)} "
                    f"({', '.join(conns)});")

    if declared:
        lines.append("  wire " + ",\n       ".join(declared) + ";")
    lines.extend(body)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def emit_hierarchy(top: Module) -> str:
    """Render a module and every submodule it instantiates (each once)."""
    seen: Dict[str, Module] = {}

    def collect(module: Module) -> None:
        if module.name in seen:
            if seen[module.name] is not module:
                raise RTLError(
                    f"two different modules named {module.name!r}")
            return
        seen[module.name] = module
        for child in module.children:
            collect(child.module)

    collect(top)
    # Emit leaves first for readability.
    order = sorted(seen.values(),
                   key=lambda mod: 0 if mod is not top else 1)
    return "\n".join(emit_module(mod) for mod in order)

"""Event-driven logic simulation of elaborated netlists.

Plays the role Modelsim plays in the paper's flow: functional
verification of the synthesized design and generation of the switching
activity (.saif) that drives power analysis.  Two-valued simulation with
native behavioural models for brick macros (storage, 1R1W access, CAM
match) and flip-flops; combinational cells evaluate the gate-catalog
functions of their library model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import gate_type
from ..errors import SimulationError
from .module import FlatCell, FlatNetlist
from .signals import bits_to_int, int_to_bits


@dataclass
class Activity:
    """Switching-activity record (the .saif of the flow).

    ``toggles`` counts transitions per net; ``cell_ops`` counts named
    operations per cell (flop clocks, brick reads/writes/matches).
    ``cycles`` is the number of clock cycles simulated.
    """

    toggles: Dict[int, int] = field(default_factory=dict)
    cell_ops: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cycles: int = 0

    def toggle_rate(self, net: int) -> float:
        """Average toggles per cycle for a net."""
        if self.cycles == 0:
            return 0.0
        return self.toggles.get(net, 0) / self.cycles

    def count_op(self, cell: str, op: str, n: int = 1) -> None:
        self.cell_ops.setdefault(cell, {}).setdefault(op, 0)
        self.cell_ops[cell][op] += n


class _BrickState:
    """Behavioural model of one brick macro instance."""

    def __init__(self, cell: FlatCell):
        self.cell = cell
        self.words: int = cell.model.attrs["words"] * \
            cell.model.attrs["stack"]
        self.bits: int = cell.model.attrs["bits"]
        self.memory_type: str = cell.model.attrs["memory_type"]
        self.storage: List[int] = [0] * self.words
        self.out_word = 0
        self.match_vector = 0

    def pin_bus(self, base: str) -> List[int]:
        """Net ids of an expanded bus pin, LSB first."""
        nets = []
        i = 0
        while f"{base}[{i}]" in self.cell.pins:
            nets.append(self.cell.pins[f"{base}[{i}]"])
            i += 1
        return nets


class LogicSimulator:
    """Two-valued, cycle-based simulator over a :class:`FlatNetlist`.

    Drive primary inputs with :meth:`set_input`, settle combinational
    logic with :meth:`settle` (implicit in :meth:`clock`), and advance
    sequential state with :meth:`clock`.  Activity is recorded per net
    and per cell operation.
    """

    def __init__(self, netlist: FlatNetlist, clock_port: str = "clk"):
        self.netlist = netlist
        self.clock_port = clock_port
        if clock_port not in netlist.inputs:
            raise SimulationError(
                f"netlist has no clock input {clock_port!r}")
        self.values: List[bool] = [False] * netlist.n_nets
        for net, value in netlist.constants.items():
            self.values[net] = value
        self.activity = Activity()
        self._comb_cells: List[FlatCell] = []
        self._flops: List[FlatCell] = []
        self._bricks: List[_BrickState] = []
        for cell in netlist.cells:
            if cell.model.is_brick:
                self._bricks.append(_BrickState(cell))
            elif cell.model.sequential:
                self._flops.append(cell)
            else:
                self._comb_cells.append(cell)
        self._fanout: Dict[int, List[FlatCell]] = {}
        for cell in self._comb_cells:
            for pin, net in cell.pins.items():
                base = cell.base_pin(pin)
                if cell.model.pins[base].direction != "output":
                    self._fanout.setdefault(net, []).append(cell)
        self._levelize()

    def _levelize(self) -> None:
        """Topological order of combinational cells (loop check)."""
        order: List[FlatCell] = []
        indegree: Dict[int, int] = {}
        producers: Dict[int, FlatCell] = {}
        consumers: Dict[int, List[FlatCell]] = {}
        cell_index = {id(c): i for i, c in enumerate(self._comb_cells)}
        deps: Dict[int, Set[int]] = {i: set()
                                     for i in range(len(self._comb_cells))}
        out_of: Dict[int, int] = {}
        for i, cell in enumerate(self._comb_cells):
            for pin, net in cell.pins.items():
                if cell.model.pins[cell.base_pin(pin)].direction == \
                        "output":
                    out_of[net] = i
        for i, cell in enumerate(self._comb_cells):
            for pin, net in cell.pins.items():
                if cell.model.pins[cell.base_pin(pin)].direction != \
                        "output" and net in out_of:
                    deps[i].add(out_of[net])
        indeg = {i: len(deps[i]) for i in deps}
        users: Dict[int, List[int]] = {}
        for i, ds in deps.items():
            for d in ds:
                users.setdefault(d, []).append(i)
        ready = [i for i, d in indeg.items() if d == 0]
        topo: List[int] = []
        while ready:
            i = ready.pop()
            topo.append(i)
            for u in users.get(i, []):
                indeg[u] -= 1
                if indeg[u] == 0:
                    ready.append(u)
        if len(topo) != len(self._comb_cells):
            raise SimulationError(
                "combinational loop detected in netlist")
        self._topo_order = [self._comb_cells[i] for i in topo]

    # --- value access -----------------------------------------------------------

    def set_input(self, port: str, value: int) -> None:
        """Drive a primary input (integer, LSB-first bit expansion)."""
        try:
            nets = self.netlist.inputs[port]
        except KeyError as exc:
            raise SimulationError(f"no input port {port!r}") from exc
        bits = int_to_bits(value, len(nets))
        for net, bit in zip(nets, bits):
            self._set_net(net, bit)

    def get_output(self, port: str) -> int:
        try:
            nets = self.netlist.outputs[port]
        except KeyError as exc:
            raise SimulationError(f"no output port {port!r}") from exc
        return bits_to_int([self.values[n] for n in nets])

    def peek(self, net: int) -> bool:
        return self.values[net]

    def _set_net(self, net: int, value: bool) -> None:
        if self.values[net] != value:
            self.values[net] = value
            self.activity.toggles[net] = \
                self.activity.toggles.get(net, 0) + 1

    # --- evaluation ------------------------------------------------------------

    def _eval_cell(self, cell: FlatCell) -> None:
        gate = gate_type(cell.model.gate_name)
        in_values = []
        out_net = None
        for pin in gate.pins:
            in_values.append(self.values[cell.pins[pin]])
        out_net = cell.pins["Y"]
        self._set_net(out_net, gate.evaluate(in_values))

    def settle(self) -> None:
        """Propagate combinational logic to a fixpoint (single pass over
        the topological order, which is exact for loop-free logic)."""
        for cell in self._topo_order:
            self._eval_cell(cell)

    def clock(self) -> None:
        """One rising clock edge: settle, capture sequential state,
        settle again."""
        self.settle()
        # Capture flops: next state from current D values.
        flop_next: List[Tuple[FlatCell, bool]] = []
        for cell in self._flops:
            gate = gate_type(cell.model.gate_name)
            d = self.values[cell.pins["D"]]
            if gate.name == "DFFE":
                en = self.values[cell.pins["EN"]]
                q = self.values[cell.pins["Y"]]
                flop_next.append((cell, d if en else q))
            else:
                flop_next.append((cell, d))
            self.activity.count_op(cell.name, "clock")
        brick_next: List[Tuple[_BrickState, Dict[str, int]]] = []
        for brick in self._bricks:
            brick_next.append((brick, self._brick_capture(brick)))
        for cell, q in flop_next:
            self._set_net(cell.pins["Y"], q)
        for brick, update in brick_next:
            self._brick_update(brick, update)
        self.activity.cycles += 1
        self.settle()

    # --- brick behaviour -----------------------------------------------------------

    def _onehot_index(self, brick: _BrickState, nets: Sequence[int],
                      what: str) -> Optional[int]:
        asserted = [i for i, n in enumerate(nets) if self.values[n]]
        if not asserted:
            return None
        if len(asserted) > 1:
            raise SimulationError(
                f"brick {brick.cell.name}: multiple {what} wordlines "
                f"asserted: {asserted}")
        return asserted[0]

    def _brick_capture(self, brick: _BrickState) -> Dict[str, int]:
        """Sample the brick's inputs at the clock edge."""
        cell = brick.cell
        update: Dict[str, int] = {}
        rwl = brick.pin_bus("RWL")
        wwl = brick.pin_bus("WWL")
        we_net = cell.pins.get("WE")
        we = self.values[we_net] if we_net is not None else False
        read_idx = self._onehot_index(brick, rwl, "read")
        if read_idx is not None:
            if read_idx >= brick.words:
                raise SimulationError(
                    f"brick {cell.name}: read index {read_idx} out of "
                    f"range")
            update["read"] = read_idx
            # Read-old-data on same-edge collision: sample at capture.
            update["rdata"] = brick.storage[read_idx]
        if we:
            write_idx = self._onehot_index(brick, wwl, "write")
            if write_idx is not None:
                wbl = brick.pin_bus("WBL")
                update["write"] = write_idx
                update["wdata"] = bits_to_int(
                    [self.values[n] for n in wbl])
        if brick.memory_type == "CAM":
            sl = brick.pin_bus("SL")
            if sl:
                update["search"] = bits_to_int(
                    [self.values[n] for n in sl])
        return update

    def _brick_update(self, brick: _BrickState,
                      update: Dict[str, int]) -> None:
        cell = brick.cell
        if "write" in update:
            brick.storage[update["write"]] = update["wdata"]
            self.activity.count_op(cell.name, "write")
        if "read" in update:
            brick.out_word = update["rdata"]
            self.activity.count_op(cell.name, "read")
            arbl = brick.pin_bus("ARBL")
            for net, bit in zip(arbl,
                                int_to_bits(brick.out_word, len(arbl))):
                self._set_net(net, bit)
        if "search" in update:
            key = update["search"]
            brick.match_vector = 0
            for w in range(brick.words):
                if brick.storage[w] == key:
                    brick.match_vector |= 1 << w
            self.activity.count_op(cell.name, "match")
            ml = brick.pin_bus("ML")
            for net, bit in zip(ml, int_to_bits(brick.match_vector,
                                                len(ml))):
                self._set_net(net, bit)
        self.activity.count_op(cell.name, "clock")

    # --- convenience -----------------------------------------------------------

    def brick_state(self, cell_name: str) -> List[int]:
        """Snapshot of a brick's storage (testing hook)."""
        for brick in self._bricks:
            if brick.cell.name == cell_name:
                return list(brick.storage)
        raise SimulationError(f"no brick instance {cell_name!r}")

    def load_brick(self, cell_name: str, words: Sequence[int]) -> None:
        """Preload a brick's storage (testbench backdoor)."""
        for brick in self._bricks:
            if brick.cell.name == cell_name:
                if len(words) > brick.words:
                    raise SimulationError("preload larger than brick")
                for i, word in enumerate(words):
                    brick.storage[i] = word
                return
        raise SimulationError(f"no brick instance {cell_name!r}")

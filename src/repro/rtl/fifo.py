"""Gate-level sorted-FIFO insertion stage (the baseline chip's core).

The non-LiM SpGEMM chip builds its priority queue "by first-in first-out
(FIFO) based SRAMs", and pays for it: "FIFO SRAMs cause latency problems
due to sequential read/write operations for shifting".  This module
synthesizes one stage of that structure — a register slot with the
insertion comparator and shift mux — and chains ``depth`` of them into a
:func:`build_sorted_fifo`: on every insert, each stage keeps, takes the
new entry, or takes its neighbour's entry, so the queue stays sorted by
key while physically shifting, which is exactly the per-element cost the
CAM architecture eliminates.

The functional tests race it against a Python ``bisect.insort`` model;
the Fig. 5/6 story then rests on two *synthesizable* datapaths, one per
chip.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import RTLError
from .components import and2, inv, mux2, or2, register, xnor2
from .module import Module
from .signals import Bus, Net, as_bus


def _less_than(m: Module, a: Bus, b: Bus, prefix: str) -> Net:
    """Unsigned a < b comparator (ripple borrow from the LSB)."""
    if a.width != b.width:
        raise RTLError("comparator widths must match")
    # borrow chain: lt_i = (~a_i & b_i) | (a_i XNOR b_i) & lt_{i-1}
    lt = as_bus(m.constant(0))[0]
    for i in range(a.width):
        not_a = inv(m, a[i], prefix + f"_na{i}")
        bit_lt = and2(m, not_a, b[i], prefix + f"_bl{i}")
        bit_eq = xnor2(m, a[i], b[i], prefix + f"_eq{i}")
        carry = and2(m, bit_eq, lt, prefix + f"_cy{i}")
        lt = or2(m, bit_lt, carry, prefix + f"_lt{i}")
    return lt


def build_sorted_fifo(depth: int, key_bits: int) -> Module:
    """A ``depth``-deep insertion-sorted queue of ``key_bits`` keys.

    Ports: ``clk``, ``insert`` (enable), ``key_in``; outputs ``keys``
    (all slots, slot 0 = smallest, concatenated LSB-first) and
    ``valid`` (per-slot occupancy).  Every insert shifts the tail —
    all ``depth`` slots switch, the energy/latency signature the paper
    pins on the baseline.
    """
    if depth < 2:
        raise RTLError("sorted FIFO needs at least two slots")
    m = Module(f"sorted_fifo_{depth}x{key_bits}")
    clk = m.input("clk")
    insert = m.input("insert")
    key_in = as_bus(m.input("key_in", key_bits))
    keys_out = as_bus(m.output("keys", depth * key_bits))
    valid_out = as_bus(m.output("valid", depth))

    # Current state registers (declared first; next-state logic below).
    slot_q: List[Bus] = []
    valid_q: List[Net] = []
    slot_d: List[Bus] = []
    valid_d: List[Net] = []

    # Build placeholder wires for current values via registers at the
    # end; to break the chicken-and-egg, create the D wires now.
    for s in range(depth):
        slot_d.append(as_bus(m.wire(f"slot_d{s}", key_bits)))
        valid_d.append(m.wire(f"valid_d{s}"))
    for s in range(depth):
        slot_q.append(as_bus(register(m, slot_d[s], clk,
                                      prefix=f"slotq{s}")))
        valid_q.append(register(m, valid_d[s], clk,
                                prefix=f"validq{s}"))

    # Insertion position: new key goes before the first slot whose key
    # is greater (or which is empty).
    goes_before: List[Net] = []
    for s in range(depth):
        lt = _less_than(m, key_in, slot_q[s], f"cmp{s}")
        empty = inv(m, valid_q[s], f"emp{s}")
        goes_before.append(or2(m, lt, empty, f"gb{s}"))
    # before_here[s] = this is the first such slot: goes_before[s] and
    # not any earlier.
    earlier = goes_before[0]
    before_here: List[Net] = [goes_before[0]]
    for s in range(1, depth):
        not_earlier = inv(m, earlier, f"ne{s}")
        before_here.append(and2(m, goes_before[s], not_earlier,
                                f"bh{s}"))
        earlier = or2(m, earlier, goes_before[s], f"ea{s}")

    # at_or_after[s]: the insertion point is at or before slot s, so
    # slot s either takes the new key or its left neighbour's key.
    at_or_after: List[Net] = []
    acc = before_here[0]
    at_or_after.append(acc)
    for s in range(1, depth):
        acc = or2(m, acc, before_here[s], f"aoa{s}")
        at_or_after.append(acc)

    for s in range(depth):
        take_new = and2(m, insert, before_here[s], f"tn{s}")
        shift = and2(m, insert, at_or_after[s], f"sh{s}")
        prev_key = slot_q[s - 1] if s > 0 else key_in
        prev_valid = valid_q[s - 1] if s > 0 else \
            as_bus(m.constant(1))[0]
        for b in range(key_bits):
            # shifted value: previous slot's key (or the new key at the
            # insertion point itself).
            shifted_bit = mux2(m, prev_key[b], key_in[b], take_new,
                               f"sb{s}_{b}")
            m.alias(as_bus(slot_d[s][b]),
                    as_bus(mux2(m, slot_q[s][b], shifted_bit, shift,
                                f"sd{s}_{b}")))
        shifted_valid = mux2(m, prev_valid, as_bus(m.constant(1))[0],
                             take_new, f"sv{s}")
        m.alias(as_bus(valid_d[s]),
                as_bus(mux2(m, valid_q[s], shifted_valid, shift,
                            f"vd{s}")))

    for s in range(depth):
        for b in range(key_bits):
            m.alias(as_bus(keys_out[s * key_bits + b]),
                    as_bus(slot_q[s][b]))
        m.alias(as_bus(valid_out[s]), as_bus(valid_q[s]))
    return m


def sorted_fifo_reference(keys: List[int], depth: int) -> Tuple[
        List[int], List[bool]]:
    """Python semantics: insert keys in order, keep the smallest
    ``depth`` sorted (overflowing keys fall off the tail)."""
    import bisect
    state: List[int] = []
    for key in keys:
        bisect.insort(state, key)
        state = state[:depth]
    valid = [True] * len(state) + [False] * (depth - len(state))
    return state + [0] * (depth - len(state)), valid

"""Gate-level component generators.

The paper's smart-memory periphery — decoders, output muxes, enable
logic, the CAM architecture's priority decode and multiply-add — is
synthesized from RTL into standard cells.  These generators play that
role: each builds a mapped gate-level structure inside a
:class:`~repro.rtl.module.Module` and returns the output signal(s).

All generators emit drive-X1 cells; the physical-synthesis flow resizes
drives against routed loads afterwards (:mod:`repro.synth.mapper`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import RTLError
from .module import Module
from .signals import Bus, Net, Signal, as_bus

_DRIVE = "_X1"


def _cell(m: Module, gate: str, prefix: str, conns) -> None:
    m.cell(m.uniq(prefix), gate + _DRIVE, conns)


def inv(m: Module, a: Net, prefix: str = "inv") -> Net:
    y = m.wire(m.uniq(prefix + "_y"))
    _cell(m, "INV", prefix, {"A": a, "Y": y})
    return y


def buf(m: Module, a: Net, prefix: str = "buf") -> Net:
    y = m.wire(m.uniq(prefix + "_y"))
    _cell(m, "BUF", prefix, {"A": a, "Y": y})
    return y


def _gate2(m: Module, gate: str, a: Net, b: Net, prefix: str) -> Net:
    y = m.wire(m.uniq(prefix + "_y"))
    _cell(m, gate, prefix, {"A": a, "B": b, "Y": y})
    return y


def and2(m: Module, a: Net, b: Net, prefix: str = "and") -> Net:
    return _gate2(m, "AND2", a, b, prefix)


def or2(m: Module, a: Net, b: Net, prefix: str = "or") -> Net:
    return _gate2(m, "OR2", a, b, prefix)


def nand2(m: Module, a: Net, b: Net, prefix: str = "nand") -> Net:
    return _gate2(m, "NAND2", a, b, prefix)


def nor2(m: Module, a: Net, b: Net, prefix: str = "nor") -> Net:
    return _gate2(m, "NOR2", a, b, prefix)


def xor2(m: Module, a: Net, b: Net, prefix: str = "xor") -> Net:
    return _gate2(m, "XOR2", a, b, prefix)


def xnor2(m: Module, a: Net, b: Net, prefix: str = "xnor") -> Net:
    return _gate2(m, "XNOR2", a, b, prefix)


def mux2(m: Module, a: Net, b: Net, sel: Net,
         prefix: str = "mux") -> Net:
    """2:1 mux: returns ``b`` when ``sel`` else ``a``."""
    y = m.wire(m.uniq(prefix + "_y"))
    _cell(m, "MUX2", prefix, {"A": a, "B": b, "S": sel, "Y": y})
    return y


def and_tree(m: Module, nets: Sequence[Net], prefix: str = "andt") -> Net:
    """Balanced AND reduction using AND2/AND3/AND4 cells."""
    nets = list(nets)
    if not nets:
        raise RTLError("and_tree needs at least one input")
    while len(nets) > 1:
        next_level: List[Net] = []
        i = 0
        while i < len(nets):
            group = nets[i:i + 4]
            i += 4
            if len(group) == 1:
                next_level.append(group[0])
            else:
                y = m.wire(m.uniq(prefix + "_y"))
                gate = {2: "AND2", 3: "AND3", 4: "AND4"}[len(group)]
                conns = dict(zip("ABCD", group))
                conns["Y"] = y
                _cell(m, gate, prefix, conns)
                next_level.append(y)
        nets = next_level
    return nets[0]


def or_tree(m: Module, nets: Sequence[Net], prefix: str = "ort") -> Net:
    """Balanced OR reduction using OR2/OR3 cells."""
    nets = list(nets)
    if not nets:
        raise RTLError("or_tree needs at least one input")
    while len(nets) > 1:
        next_level: List[Net] = []
        i = 0
        while i < len(nets):
            group = nets[i:i + 3]
            i += 3
            if len(group) == 1:
                next_level.append(group[0])
            else:
                y = m.wire(m.uniq(prefix + "_y"))
                gate = {2: "OR2", 3: "OR3"}[len(group)]
                conns = dict(zip("ABC", group))
                conns["Y"] = y
                _cell(m, gate, prefix, conns)
                next_level.append(y)
        nets = next_level
    return nets[0]


def xor_tree(m: Module, nets: Sequence[Net], prefix: str = "xort") -> Net:
    """Balanced XOR (parity) reduction using XOR2 cells."""
    nets = list(nets)
    if not nets:
        raise RTLError("xor_tree needs at least one input")
    while len(nets) > 1:
        next_level: List[Net] = []
        i = 0
        while i < len(nets):
            group = nets[i:i + 2]
            i += 2
            if len(group) == 1:
                next_level.append(group[0])
            else:
                next_level.append(
                    xor2(m, group[0], group[1], prefix + "_x"))
        nets = next_level
    return nets[0]


def decoder(m: Module, addr: Bus, en: Optional[Net] = None,
            prefix: str = "dec") -> Bus:
    """N-to-2^N one-hot decoder (the ``decoder_5to32`` of Fig. 3).

    Each output is the AND of the address literals (optionally gated by
    ``en``).  Complemented literals are shared across outputs.
    """
    n = addr.width
    if n < 1:
        raise RTLError("decoder needs at least one address bit")
    addr_b = [inv(m, bit, prefix + "_nb") for bit in addr]
    outputs: List[Net] = []
    for code in range(1 << n):
        literals = [addr[i] if (code >> i) & 1 else addr_b[i]
                    for i in range(n)]
        if en is not None:
            literals.append(en)
        outputs.append(and_tree(m, literals, prefix + f"_o{code}"))
    return Bus(outputs)


def onehot_mux(m: Module, options: Sequence[Bus], onehot: Bus,
               prefix: str = "ohm") -> Bus:
    """Word-wide mux selected by a one-hot control (bank output mux).

    Mapped as two inverting stages (NAND per term, NAND collect) — the
    classic fast AND-OR-INVERT mux structure — so the post-access mux of
    a partitioned memory (config E of Fig. 4) costs two gate delays, not
    an AND/OR tree.
    """
    if len(options) != onehot.width:
        raise RTLError("one option bus per select bit required")
    width = options[0].width
    if any(option.width != width for option in options):
        raise RTLError("all mux options must have equal width")
    out_bits: List[Net] = []
    for b in range(width):
        terms = [nand2(m, option[b], onehot[i], prefix + f"_a{b}")
                 for i, option in enumerate(options)]
        # Collect with NAND trees (NAND of NANDs = OR of ANDs for the
        # one-hot case); for >4 terms fall back to OR of AND pairs.
        if len(terms) == 1:
            out_bits.append(inv(m, terms[0], prefix + f"_o{b}"))
            continue
        if len(terms) <= 4:
            y = m.wire(m.uniq(prefix + f"_o{b}"))
            gate = {2: "NAND2", 3: "NAND3", 4: "NAND4"}[len(terms)]
            conns = dict(zip("ABCD", terms))
            conns["Y"] = y
            _cell(m, gate, prefix, conns)
            out_bits.append(y)
        else:
            inverted = [inv(m, t, prefix + f"_i{b}") for t in terms]
            out_bits.append(or_tree(m, inverted, prefix + f"_o{b}"))
    return Bus(out_bits)


def mux_tree(m: Module, options: Sequence[Bus], sel: Bus,
             prefix: str = "mt") -> Bus:
    """Binary mux tree over 2^k equal-width options."""
    options = list(options)
    if len(options) != (1 << sel.width):
        raise RTLError(
            f"mux tree needs {1 << sel.width} options, got {len(options)}")
    level = options
    for k in range(sel.width):
        next_level: List[Bus] = []
        for i in range(0, len(level), 2):
            bits = [mux2(m, level[i][b], level[i + 1][b], sel[k],
                         prefix + f"_l{k}")
                    for b in range(level[i].width)]
            next_level.append(Bus(bits))
        level = next_level
    return level[0]


def register(m: Module, d: Signal, clk: Net, en: Optional[Net] = None,
             prefix: str = "reg") -> Signal:
    """DFF (or DFFE) register bank over a signal."""
    d_bus = as_bus(d)
    q_bits: List[Net] = []
    for i, bit in enumerate(d_bus):
        q = m.wire(m.uniq(prefix + f"_q{i}"))
        if en is None:
            _cell(m, "DFF", prefix, {"D": bit, "CK": clk, "Y": q})
        else:
            _cell(m, "DFFE", prefix,
                  {"D": bit, "EN": en, "CK": clk, "Y": q})
        q_bits.append(q)
    if isinstance(d, Net):
        return q_bits[0]
    return Bus(q_bits)


def equals(m: Module, a: Bus, b: Bus, prefix: str = "eq") -> Net:
    """Word equality comparator (XNOR reduce)."""
    if a.width != b.width:
        raise RTLError("comparator widths must match")
    bits = [xnor2(m, a[i], b[i], prefix + "_x") for i in range(a.width)]
    return and_tree(m, bits, prefix + "_and")


def full_adder(m: Module, a: Net, b: Net, cin: Net,
               prefix: str = "fa") -> Tuple[Net, Net]:
    """Returns (sum, carry)."""
    axb = xor2(m, a, b, prefix + "_x1")
    s = xor2(m, axb, cin, prefix + "_x2")
    c1 = and2(m, a, b, prefix + "_a1")
    c2 = and2(m, axb, cin, prefix + "_a2")
    cout = or2(m, c1, c2, prefix + "_o")
    return s, cout


def ripple_adder(m: Module, a: Bus, b: Bus, cin: Optional[Net] = None,
                 prefix: str = "add") -> Tuple[Bus, Net]:
    """Ripple-carry adder; returns (sum bus, carry-out)."""
    if a.width != b.width:
        raise RTLError("adder widths must match")
    carry = cin if cin is not None else as_bus(m.constant(0))[0]
    sums: List[Net] = []
    for i in range(a.width):
        s, carry = full_adder(m, a[i], b[i], carry, prefix + f"_b{i}")
        sums.append(s)
    return Bus(sums), carry


def multiplier(m: Module, a: Bus, b: Bus,
               prefix: str = "mul") -> Bus:
    """Unsigned array multiplier: returns an (a.width + b.width) product.

    Partial products are ANDed then accumulated with ripple adders —
    the "multiply and add block" of the paper's SpGEMM write-back path
    uses this generator.
    """
    n, k = a.width, b.width
    # Partial product rows, each shifted by its row index.
    acc: List[Net] = [and2(m, a[i], b[0], prefix + "_pp0")
                      for i in range(n)]
    acc_width = n
    zero = as_bus(m.constant(0))[0]
    for j in range(1, k):
        row = [and2(m, a[i], b[j], prefix + f"_pp{j}") for i in range(n)]
        # Align: accumulator bits [j:] add with row.
        low_bits = acc[:j]
        hi = acc[j:] + [zero] * (j + n - acc_width)
        sum_bus, cout = ripple_adder(
            m, Bus(hi), Bus(row + [zero] * (len(hi) - n)),
            prefix=prefix + f"_r{j}")
        acc = low_bits + sum_bus.bits() + [cout]
        acc_width = len(acc)
    want = n + k
    if len(acc) < want:
        acc = acc + [zero] * (want - len(acc))
    return Bus(acc[:want])


def priority_encoder(m: Module, requests: Bus,
                     prefix: str = "pri") -> Tuple[Bus, Net]:
    """Lowest-index-wins priority one-hot filter.

    Returns ``(grant_onehot, any_valid)`` — the "mismatch detection block
    ... acts as a priority decoder" in the paper's CAM periphery.
    """
    grants: List[Net] = [requests[0]]
    blocked = requests[0]
    for i in range(1, requests.width):
        not_blocked = inv(m, blocked, prefix + f"_nb{i}")
        grants.append(and2(m, requests[i], not_blocked, prefix + f"_g{i}"))
        blocked = or2(m, blocked, requests[i], prefix + f"_b{i}")
    return Bus(grants), blocked


def encode_onehot(m: Module, onehot: Bus, prefix: str = "enc") -> Bus:
    """One-hot to binary encoder (OR trees over selected positions)."""
    n_bits = max(1, math.ceil(math.log2(onehot.width)))
    out: List[Net] = []
    for bit in range(n_bits):
        terms = [onehot[i] for i in range(onehot.width)
                 if (i >> bit) & 1]
        if not terms:
            out.append(as_bus(m.constant(0))[0])
        else:
            out.append(or_tree(m, terms, prefix + f"_b{bit}"))
    return Bus(out)

"""Structural RTL substrate: modules, generators, memories, simulation."""

from .components import (
    and2,
    and_tree,
    buf,
    decoder,
    encode_onehot,
    equals,
    full_adder,
    inv,
    multiplier,
    mux2,
    mux_tree,
    nand2,
    nor2,
    onehot_mux,
    or2,
    or_tree,
    priority_encoder,
    register,
    ripple_adder,
    xnor2,
    xor2,
    xor_tree,
)
from .ecc import (
    DecodeResult,
    build_ecc_sram,
    build_secded_decoder,
    build_secded_encoder,
    ecc_bank_config,
    secded_decode,
    secded_encode,
    secded_parity_bits,
)
from .fifo import build_sorted_fifo, sorted_fifo_reference
from .memory import build_cam, build_sram, fig3_sram
from .module import (
    CellRef,
    FlatCell,
    FlatNetlist,
    Module,
    ModuleRef,
    Port,
    elaborate,
)
from .signals import Bus, Net, as_bus, bits_to_int, int_to_bits
from .simulate import Activity, LogicSimulator
from .spgemm_datapath import build_update_datapath, \
    update_datapath_reference
from .verilog import emit_hierarchy, emit_module

__all__ = [
    "and2", "and_tree", "buf", "decoder", "encode_onehot", "equals",
    "full_adder", "inv", "multiplier", "mux2", "mux_tree", "nand2",
    "nor2", "onehot_mux", "or2", "or_tree", "priority_encoder",
    "register", "ripple_adder", "xnor2", "xor2", "xor_tree",
    "DecodeResult", "build_ecc_sram", "build_secded_decoder",
    "build_secded_encoder", "ecc_bank_config", "secded_decode",
    "secded_encode", "secded_parity_bits",
    "build_cam", "build_sram", "fig3_sram",
    "build_sorted_fifo", "sorted_fifo_reference",
    "CellRef", "FlatCell", "FlatNetlist", "Module", "ModuleRef", "Port",
    "elaborate",
    "Bus", "Net", "as_bus", "bits_to_int", "int_to_bits",
    "Activity", "LogicSimulator",
    "build_update_datapath", "update_datapath_reference",
    "emit_hierarchy", "emit_module",
]

"""Smart-memory macro builders (the RTL of Fig. 3).

:func:`build_sram` reproduces the paper's canonical example: a 1R1W SRAM
described structurally from stacked memory bricks plus standard-cell
decoders, with partition-enable gating ("only the bank with the read
address hit is activated during read") and a bank output mux.
:func:`build_cam` builds the CAM equivalent used by the SpGEMM
architecture's index arrays.

These builders are parameterized by a :class:`~repro.bricks.stack.
BankConfig`, which is exactly the knob set the paper's design-space
exploration sweeps (brick size, stacking, partitioning).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..bricks.library import bank_cell_name
from ..bricks.stack import BankConfig
from ..errors import RTLError
from .components import and2, decoder, onehot_mux, or_tree, register
from .module import Module
from .signals import Bus, as_bus


def _log2(n: int, what: str) -> int:
    bits = max(1, math.ceil(math.log2(n))) if n > 1 else 0
    if n != (1 << bits) and n != 1:
        raise RTLError(f"{what} must be a power of two, got {n}")
    return bits


def build_sram(config: BankConfig, registered_output: bool = False
               ) -> Module:
    """Build a 1R1W SRAM from stacked bricks (Fig. 3, generalized).

    Ports: ``clk``, ``raddr``, ``waddr``, ``we``, ``din``, ``dout``.
    The brick macro cell ``<brick>_s<stack>`` must exist in the library
    the module is later elaborated against.

    With ``partitions == 1`` this is configs A-D of the test chip; with
    more partitions it is config E: per-partition decoders are gated by
    the partition-select one-hot so only the hit bank fires, and a
    one-hot output mux assembles ``dout``.
    """
    words, bits = config.words, config.bits
    part_words = config.words_per_partition
    addr_bits = _log2(words, "total words")
    part_addr_bits = _log2(part_words, "partition words")
    psel_bits = addr_bits - part_addr_bits

    m = Module(f"sram_{words}x{bits}_p{config.partitions}"
               f"_{config.brick.name}")
    clk = m.input("clk")
    raddr_in = as_bus(m.input("raddr", addr_bits))
    waddr_in = as_bus(m.input("waddr", addr_bits))
    we = m.input("we")
    din = as_bus(m.input("din", bits))
    dout = as_bus(m.output("dout", bits))
    # Buffer the address inputs: the decoder fan-out (one minterm gate
    # per word) must be paid for by a real driver, which is where a big
    # single-partition memory loses to a partitioned one (Fig. 4b D vs E).
    from .components import buf as _buf
    raddr = Bus([_buf(m, bit, "rabuf") for bit in raddr_in])
    waddr = Bus([_buf(m, bit, "wabuf") for bit in waddr_in])

    cell_name = bank_cell_name(config.brick, config.stack)

    if config.partitions == 1:
        rdec = decoder(m, raddr, prefix="rdec")
        wdec = decoder(m, waddr, prefix="wdec")
        arbl = as_bus(m.wire("arbl", bits))
        m.cell("bank0", cell_name, {
            "CLK": clk, "RWL": rdec, "WWL": wdec,
            "WBL": din, "WE": we, "ARBL": arbl,
        })
        out = arbl
    else:
        low_r = raddr[:part_addr_bits]
        low_w = waddr[:part_addr_bits]
        psel_r = decoder(m, raddr[part_addr_bits:], prefix="pselr")
        psel_w = decoder(m, waddr[part_addr_bits:], prefix="pselw")
        bank_outputs: List[Bus] = []
        for p in range(config.partitions):
            rdec = decoder(m, low_r, en=psel_r[p], prefix=f"rdec{p}")
            wdec = decoder(m, low_w, en=psel_w[p], prefix=f"wdec{p}")
            we_p = and2(m, we, psel_w[p], f"weg{p}")
            arbl = as_bus(m.wire(f"arbl{p}", bits))
            m.cell(f"bank{p}", cell_name, {
                "CLK": clk, "RWL": rdec, "WWL": wdec,
                "WBL": din, "WE": we_p, "ARBL": arbl,
            })
            bank_outputs.append(arbl)
        out = onehot_mux(m, bank_outputs, psel_r, prefix="obm")

    if registered_output:
        out = as_bus(register(m, out, clk, prefix="oreg"))
    m.alias(dout, out)
    return m


def build_cam(config: BankConfig) -> Module:
    """Build a CAM bank: write port plus single-cycle match port.

    Ports: ``clk``, ``waddr``, ``we``, ``wdata`` (stores entries);
    ``key`` (search word); outputs ``ml`` (per-word match lines) and
    ``hit`` (any-match flag).  This is the building block of the paper's
    horizontal/vertical CAM SpGEMM architecture (Fig. 5).
    """
    if config.brick.memory_type != "CAM":
        raise RTLError("build_cam requires a CAM brick")
    if config.partitions != 1:
        raise RTLError("CAM banks are single-partition in this flow")
    words, bits = config.words, config.bits
    addr_bits = _log2(words, "CAM words")

    m = Module(f"cam_{words}x{bits}_{config.brick.name}")
    clk = m.input("clk")
    waddr = as_bus(m.input("waddr", addr_bits))
    we = m.input("we")
    wdata = as_bus(m.input("wdata", bits))
    key = as_bus(m.input("key", bits))
    ml = as_bus(m.output("ml", words))
    hit = m.output("hit")

    wdec = decoder(m, waddr, prefix="wdec")
    # CAM bricks still expose the read port; tie the read wordlines off.
    rwl = as_bus(m.constant(0, words))
    arbl = as_bus(m.wire("arbl", bits))
    ml_int = as_bus(m.wire("ml_int", words))
    m.cell("cam0", bank_cell_name(config.brick, config.stack), {
        "CLK": clk, "RWL": rwl, "WWL": wdec, "WBL": wdata,
        "WE": we, "ARBL": arbl, "SL": key, "ML": ml_int,
    })
    m.alias(ml, ml_int)
    any_hit = or_tree(m, list(ml_int), prefix="hit")
    m.alias(as_bus(hit), as_bus(any_hit))
    return m


def fig3_sram() -> Tuple[Module, BankConfig]:
    """The literal Fig. 3 design: 32x10 bit 1R1W SRAM from two stacked
    16x10 bit 8T bricks with 5-to-32 standard-cell decoders."""
    from ..bricks.spec import sram_brick
    from ..bricks.stack import single_partition
    config = single_partition(sram_brick(16, 10), 32)
    return build_sram(config), config

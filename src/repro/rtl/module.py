"""Structural modules, instances and elaboration to a flat netlist.

A :class:`Module` holds ports, nets, standard-cell/brick instances and
submodule instances; :func:`elaborate` flattens a hierarchy against a
:class:`~repro.liberty.models.LibraryModel` into a :class:`FlatNetlist`,
the common input of the logic simulator, placer, router, STA and power
engines — the way a gate-level Verilog netlist plus .lib files feed the
paper's flow.

Constants: ``module.constant(value, width)`` creates nets tied to 0/1;
tie cells are materialized at elaboration as pseudo-drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..errors import RTLError
from ..liberty.models import CellModel, LibraryModel
from .signals import Bus, Net, Signal, as_bus, int_to_bits

IN = "in"
OUT = "out"

#: Brick macro pins that accept buses: representative library pin -> True.
_BRICK_BUS_PINS = {"RWL", "WWL", "WBL", "ARBL", "SL", "ML"}


@dataclass
class Port:
    name: str
    direction: str
    signal: Signal

    @property
    def width(self) -> int:
        return 1 if isinstance(self.signal, Net) else self.signal.width


@dataclass
class CellRef:
    """An instance of a library cell inside a module.

    ``conns`` maps pin names to nets.  Brick macros may map a bus pin
    name (e.g. ``"RWL"``) to a :class:`Bus`; elaboration expands it to
    ``RWL[0] .. RWL[n-1]``.
    """

    name: str
    cell_type: str
    conns: Dict[str, Signal]


@dataclass
class ModuleRef:
    name: str
    module: "Module"
    conns: Dict[str, Signal]


class Module:
    """A structural netlist module."""

    def __init__(self, name: str):
        if not name:
            raise RTLError("module name must be non-empty")
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.cells: List[CellRef] = []
        self.children: List[ModuleRef] = []
        self._net_names: Set[str] = set()
        self._cell_names: Set[str] = set()
        self._uid = 0
        #: nets tied to constants: net -> bool value
        self.constants: Dict[Net, bool] = {}
        #: net alias pairs (a, b) connected together
        self.aliases: List[Tuple[Net, Net]] = []

    # --- net and port creation ------------------------------------------------

    def _new_net(self, name: str) -> Net:
        if name in self._net_names:
            raise RTLError(f"duplicate net {name!r} in {self.name}")
        self._net_names.add(name)
        return Net(name, self.name)

    def wire(self, name: str, width: int = 1) -> Signal:
        """Create an internal net (width 1) or bus."""
        if width < 1:
            raise RTLError("width must be >= 1")
        if width == 1:
            return self._new_net(name)
        return Bus([self._new_net(f"{name}[{i}]") for i in range(width)])

    def uniq(self, prefix: str) -> str:
        """A unique instance/net name with the given prefix."""
        self._uid += 1
        return f"{prefix}_{self._uid}"

    def _port(self, name: str, direction: str, width: int) -> Signal:
        if name in self.ports:
            raise RTLError(f"duplicate port {name!r} in {self.name}")
        signal = self.wire(name, width)
        self.ports[name] = Port(name, direction, signal)
        return signal

    def input(self, name: str, width: int = 1) -> Signal:
        return self._port(name, IN, width)

    def output(self, name: str, width: int = 1) -> Signal:
        return self._port(name, OUT, width)

    def constant(self, value: int, width: int = 1) -> Signal:
        """Nets tied to a constant value."""
        signal = self.wire(self.uniq(f"const{value}"), width)
        bits = int_to_bits(value, width)
        for net, bit in zip(as_bus(signal), bits):
            self.constants[net] = bit
        return signal

    def alias(self, a: Signal, b: Signal) -> None:
        """Connect two equal-width signals (Verilog ``assign a = b``)."""
        bus_a, bus_b = as_bus(a), as_bus(b)
        if bus_a.width != bus_b.width:
            raise RTLError(
                f"alias width mismatch: {bus_a.width} vs {bus_b.width}")
        for net_a, net_b in zip(bus_a, bus_b):
            self.aliases.append((net_a, net_b))

    # --- instantiation ------------------------------------------------------------

    def cell(self, name: str, cell_type: str,
             conns: Dict[str, Signal]) -> CellRef:
        """Instantiate a library cell (standard cell or brick macro)."""
        if name in self._cell_names:
            raise RTLError(f"duplicate instance {name!r} in {self.name}")
        self._cell_names.add(name)
        ref = CellRef(name, cell_type, dict(conns))
        self.cells.append(ref)
        return ref

    def instance(self, name: str, module: "Module",
                 conns: Dict[str, Signal]) -> ModuleRef:
        """Instantiate a submodule, binding its ports to parent signals."""
        if name in self._cell_names:
            raise RTLError(f"duplicate instance {name!r} in {self.name}")
        self._cell_names.add(name)
        for port_name, signal in conns.items():
            if port_name not in module.ports:
                raise RTLError(
                    f"{module.name} has no port {port_name!r}")
            expected = module.ports[port_name].width
            actual = 1 if isinstance(signal, Net) else signal.width
            if expected != actual:
                raise RTLError(
                    f"width mismatch binding {module.name}.{port_name}: "
                    f"port is {expected} bits, signal is {actual}")
        missing = set(module.ports) - set(conns)
        if missing:
            raise RTLError(
                f"unbound ports on {module.name}: {sorted(missing)}")
        ref = ModuleRef(name, module, dict(conns))
        self.children.append(ref)
        return ref


# --- flat netlist --------------------------------------------------------------


@dataclass
class FlatCell:
    """A flattened cell instance with pin-to-net-id connections."""

    name: str
    model: CellModel
    pins: Dict[str, int]  # expanded pin name ("RWL[3]", "A") -> net id

    def base_pin(self, pin: str) -> str:
        """Strip a bus index: ``"RWL[3]"`` -> ``"RWL"``."""
        return pin.split("[", 1)[0]


@dataclass
class FlatNetlist:
    """The elaborated design: globally numbered nets and flat cells."""

    name: str
    net_names: List[str]
    cells: List[FlatCell]
    inputs: Dict[str, List[int]]   # top port -> net ids (LSB first)
    outputs: Dict[str, List[int]]
    constants: Dict[int, bool]

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    def drivers(self) -> Dict[int, Tuple[str, str]]:
        """Map net id -> (cell name, output pin) of its driver."""
        result: Dict[int, Tuple[str, str]] = {}
        for cell in self.cells:
            for pin, net in cell.pins.items():
                if cell.model.pins[cell.base_pin(pin)].direction == "output":
                    if net in result:
                        raise RTLError(
                            f"net {self.net_names[net]} driven by both "
                            f"{result[net][0]} and {cell.name}")
                    result[net] = (cell.name, pin)
        return result

    def loads(self) -> Dict[int, List[Tuple[str, str]]]:
        """Map net id -> [(cell name, input pin)] of its sinks."""
        result: Dict[int, List[Tuple[str, str]]] = {}
        for cell in self.cells:
            for pin, net in cell.pins.items():
                direction = cell.model.pins[cell.base_pin(pin)].direction
                if direction != "output":
                    result.setdefault(net, []).append((cell.name, pin))
        return result

    def validate(self) -> None:
        """Single-driver check plus undriven-net detection."""
        driven = set(self.drivers())
        driven.update(self.constants)
        for port_nets in self.inputs.values():
            driven.update(port_nets)
        loads = self.loads()
        undriven = [self.net_names[n] for n in loads if n not in driven]
        if undriven:
            raise RTLError(
                f"nets with loads but no driver: {undriven[:8]}"
                + ("..." if len(undriven) > 8 else ""))

    def stats(self) -> Dict[str, int]:
        bricks = sum(1 for c in self.cells if c.model.is_brick)
        seq = sum(1 for c in self.cells
                  if c.model.sequential and not c.model.is_brick)
        return {
            "nets": self.n_nets,
            "cells": len(self.cells),
            "bricks": bricks,
            "flops": seq,
            "combinational": len(self.cells) - bricks - seq,
        }


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        root = x
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(x, x) != x:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def _expand_cell_conns(ref: CellRef, model: CellModel
                       ) -> Dict[str, Net]:
    """Expand bus connections on brick macros to indexed pin names."""
    expanded: Dict[str, Net] = {}
    for pin, signal in ref.conns.items():
        base = pin.split("[", 1)[0]
        if base not in model.pins:
            raise RTLError(
                f"cell {ref.name} ({model.name}) has no pin {base!r}")
        if isinstance(signal, Bus):
            if base not in _BRICK_BUS_PINS or not model.is_brick:
                if signal.width == 1:
                    expanded[pin] = signal[0]
                    continue
                raise RTLError(
                    f"pin {pin!r} of {model.name} is 1-bit; got a "
                    f"{signal.width}-bit bus")
            for i, net in enumerate(signal):
                expanded[f"{base}[{i}]"] = net
        else:
            expanded[pin] = signal
    return expanded


def elaborate(top: Module, library: LibraryModel) -> FlatNetlist:
    """Flatten a module hierarchy into a :class:`FlatNetlist`.

    Net names are hierarchical (``u_dec.n_3``); ports of submodules merge
    with their parent nets.  Aliases and port bindings are resolved with a
    union-find so each electrical net gets exactly one id.
    """
    net_ids: Dict[Tuple[int, str], int] = {}
    net_names: List[str] = []
    uf = _UnionFind()
    constants: Dict[int, bool] = {}
    cells: List[FlatCell] = []

    def net_id(scope_id: int, prefix: str, net: Net) -> int:
        key = (scope_id, net.name)
        if key not in net_ids:
            net_ids[key] = len(net_names)
            net_names.append(prefix + net.name)
        return net_ids[key]

    scope_counter = [0]

    def walk(module: Module, prefix: str, scope_id: int,
             bindings: Dict[str, int]) -> None:
        # bindings: this module's port net name -> parent net id.
        for net_name, parent_id in bindings.items():
            key = (scope_id, net_name)
            net_ids[key] = parent_id
        for net, value in module.constants.items():
            nid = uf.find(net_id(scope_id, prefix, net))
            constants[nid] = value
        for net_a, net_b in module.aliases:
            uf.union(net_id(scope_id, prefix, net_a),
                     net_id(scope_id, prefix, net_b))
        for ref in module.cells:
            model = library.cell(ref.cell_type)
            expanded = _expand_cell_conns(ref, model)
            pins = {pin: net_id(scope_id, prefix, net)
                    for pin, net in expanded.items()}
            cells.append(FlatCell(prefix + ref.name, model, pins))
        for child in module.children:
            scope_counter[0] += 1
            child_scope = scope_counter[0]
            child_bindings: Dict[str, int] = {}
            for port_name, signal in child.conns.items():
                port = child.module.ports[port_name]
                parent_bits = as_bus(signal).bits()
                port_bits = as_bus(port.signal).bits()
                for p_net, c_net in zip(parent_bits, port_bits):
                    child_bindings[c_net.name] = net_id(
                        scope_id, prefix, p_net)
            walk(child.module, prefix + child.name + ".", child_scope,
                 child_bindings)

    inputs: Dict[str, List[int]] = {}
    outputs: Dict[str, List[int]] = {}
    walk(top, "", 0, {})
    for port in top.ports.values():
        # net_id creates ids on demand: ports nothing references (e.g.
        # an unused clock on a purely combinational block) still exist.
        ids = [net_id(0, "", net) for net in as_bus(port.signal)]
        if port.direction == IN:
            inputs[port.name] = ids
        else:
            outputs[port.name] = ids

    # Resolve union-find: compact net ids.
    remap: Dict[int, int] = {}
    final_names: List[str] = []

    def resolve(nid: int) -> int:
        root = uf.find(nid)
        if root not in remap:
            remap[root] = len(final_names)
            final_names.append(net_names[root])
        return remap[root]

    flat_cells = [
        FlatCell(c.name, c.model,
                 {pin: resolve(nid) for pin, nid in c.pins.items()})
        for c in cells
    ]
    flat = FlatNetlist(
        name=top.name,
        net_names=final_names,
        cells=flat_cells,
        inputs={k: [resolve(n) for n in v] for k, v in inputs.items()},
        outputs={k: [resolve(n) for n in v] for k, v in outputs.items()},
        constants={resolve(n): v for n, v in constants.items()},
    )
    flat.validate()
    return flat

"""Engineering units and SI formatting helpers.

The package works in plain SI units internally: seconds, ohms, farads,
volts, amperes, joules, watts and hertz.  Geometry is the single exception
and is expressed in micrometres, which is the natural unit of standard-cell
layout.  The constants below exist so that code reads like the paper
(``247 * PS``, ``0.54 * PJ``) instead of drowning in exponents.
"""

from __future__ import annotations

import math

# --- time ---------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

# --- capacitance ---------------------------------------------------------
F = 1.0
PF = 1e-12
FF = 1e-15
AF = 1e-18

# --- resistance ----------------------------------------------------------
OHM = 1.0
KOHM = 1e3
MEGOHM = 1e6

# --- energy / power ------------------------------------------------------
J = 1.0
MJ = 1e-3
UJ = 1e-6
NJ = 1e-9
PJ = 1e-12
FJ = 1e-15
W = 1.0
MW = 1e-3
UW = 1e-6
NW = 1e-9

# --- frequency -----------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- voltage / current ---------------------------------------------------
V = 1.0
MV = 1e-3
A = 1.0
MA = 1e-3
UA = 1e-6
NA = 1e-9
PA = 1e-12

# --- geometry (micrometres) ----------------------------------------------
UM = 1.0
NM = 1e-3
MM = 1e3

_SI_PREFIXES = (
    (1e24, "Y"), (1e21, "Z"), (1e18, "E"), (1e15, "P"), (1e12, "T"),
    (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    (1e-18, "a"), (1e-21, "z"), (1e-24, "y"),
)


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.47e-10, 's')
    == '247 ps'``.

    ``digits`` is the number of significant digits kept.  Zero, NaN and
    infinities format without a prefix.
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    if math.isnan(value) or math.isinf(value):
        return f"{value} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def ratio_percent(observed: float, reference: float) -> float:
    """Signed percentage error of ``observed`` against ``reference``.

    Matches the convention of Table 1 in the paper: positive when the tool
    over-estimates the reference.
    """
    if reference == 0:
        raise ZeroDivisionError("reference value is zero")
    return (observed - reference) / reference * 100.0

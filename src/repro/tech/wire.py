"""Wire (interconnect) parasitic models.

Wires matter twice in the paper: *inside* bricks, where local bitline and
wordline RC set the brick critical path (Table 1 grows with stacking because
the array read bitline gets longer), and *between* bricks, where the routed
parasitics feed static timing analysis the way a .spef file feeds PrimeTime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..errors import TechnologyError


@dataclass(frozen=True)
class WireLayer:
    """Per-unit-length electrical parameters of one routing layer.

    Parameters
    ----------
    name:
        Layer name (``"M1"``, ``"M2"``, ...).
    r_per_um:
        Sheet-derived wire resistance per um of length (ohm / um).
    c_per_um:
        Total (ground + coupling average) wire capacitance per um (F / um).
    pitch_um:
        Routing pitch of the layer, used by the router for track counting.
    """

    name: str
    r_per_um: float
    c_per_um: float
    pitch_um: float

    def __post_init__(self) -> None:
        if self.r_per_um < 0 or self.c_per_um < 0 or self.pitch_um <= 0:
            raise TechnologyError(
                f"invalid wire layer parameters for {self.name!r}")

    def rc(self, length_um: float) -> Tuple[float, float]:
        """Total lumped (R, C) of ``length_um`` of this layer."""
        if length_um < 0:
            raise TechnologyError("wire length must be non-negative")
        return self.r_per_um * length_um, self.c_per_um * length_um

    def elmore_delay(self, length_um: float, c_load: float = 0.0,
                     r_drive: float = 0.0) -> float:
        """Elmore delay of a distributed line of ``length_um``.

        The classic closed form: driver resistance sees the whole wire cap
        plus the load, while the distributed wire contributes ``R*C/2`` of
        itself plus ``R`` times the load.
        """
        r_w, c_w = self.rc(length_um)
        return r_drive * (c_w + c_load) + r_w * (c_w / 2.0 + c_load)

    def segments(self, length_um: float, n: int) -> List[Tuple[float, float]]:
        """Split the wire into ``n`` equal RC segments (for extraction).

        Returns a list of ``(r_segment, c_segment)`` pairs.  Useful for
        building ladder networks fed to the transient simulator.
        """
        if n <= 0:
            raise TechnologyError("segment count must be positive")
        r_w, c_w = self.rc(length_um)
        return [(r_w / n, c_w / n)] * n

    def scaled(self, r_scale: float = 1.0, c_scale: float = 1.0) -> "WireLayer":
        """Return a copy with R and C scaled (corner application)."""
        return replace(self, r_per_um=self.r_per_um * r_scale,
                       c_per_um=self.c_per_um * c_scale)

"""Calibrated technology presets.

``cmos65`` is the workhorse: the paper's two chips were fabricated in a
commercial 65 nm process, and the preset's free parameters were calibrated
(see DESIGN.md Section 5) so that the compiled 16x10 bit 8T brick lands near
the paper's Table 1 anchor point (~247 ps read critical path, ~0.54 pJ read
energy at 1x stacking).  Every *trend* reported by the benchmarks emerges
from the physics of the model rather than from this calibration.

The scaled presets (45/28/14 nm) exist because Section 6 of the paper
stresses retargetability: moving nodes re-characterizes the same formulas.
They follow idealized Dennard-ish scaling and are used by the retargeting
tests and the ablation benches, not by the headline reproductions.
"""

from __future__ import annotations

from ..units import FF, NA
from .technology import Technology
from .wire import WireLayer


def cmos65() -> Technology:
    """The calibrated 65 nm preset used by all paper reproductions."""
    layers = {
        "M1": WireLayer("M1", r_per_um=1.60, c_per_um=0.35 * FF,
                        pitch_um=0.20),
        "M2": WireLayer("M2", r_per_um=1.25, c_per_um=0.25 * FF,
                        pitch_um=0.20),
        "M3": WireLayer("M3", r_per_um=1.25, c_per_um=0.32 * FF,
                        pitch_um=0.20),
        "M4": WireLayer("M4", r_per_um=0.60, c_per_um=0.30 * FF,
                        pitch_um=0.28),
    }
    return Technology(
        name="cmos65",
        node_nm=65.0,
        vdd=1.2,
        temp_c=25.0,
        r_on_n=1900.0,          # ohm*um, calibrated to brick anchor point
        beta_p=2.0,
        c_gate=1.60 * FF,       # F/um
        c_diff=1.30 * FF,       # F/um
        v_th_frac=0.30,
        i_leak_n=2.0 * NA,      # A/um
        layers=layers,
        local_layer="M1",
        routing_layer="M3",
        poly_pitch_um=0.26,
        m1_pitch_um=0.20,
        row_height_tracks=9,
        w_min_um=0.12,
    )


def _scaled_node(base: Technology, name: str, node_nm: float) -> Technology:
    """Idealized constant-field scaling of ``base`` to ``node_nm``.

    Linear dimensions scale by ``s = node / base_node``; per-um device R is
    roughly constant-to-slightly-rising at fixed width budget, per-um caps
    shrink with oxide/perimeter, wires get worse per um.  These exponents
    are deliberately simple — the presets exist to exercise retargeting,
    not to model foundry data.
    """
    s = node_nm / base.node_nm
    layers = {
        key: WireLayer(layer.name,
                       r_per_um=layer.r_per_um / s,
                       c_per_um=layer.c_per_um,
                       pitch_um=layer.pitch_um * s)
        for key, layer in base.layers.items()
    }
    return Technology(
        name=name,
        node_nm=node_nm,
        vdd=base.vdd * (0.5 + 0.5 * s),     # supply scales sub-linearly
        temp_c=base.temp_c,
        r_on_n=base.r_on_n * (1.0 + 0.3 * (1.0 - s)),
        beta_p=base.beta_p,
        c_gate=base.c_gate * s,
        c_diff=base.c_diff * s,
        v_th_frac=base.v_th_frac,
        i_leak_n=base.i_leak_n / s,
        layers=layers,
        local_layer=base.local_layer,
        routing_layer=base.routing_layer,
        poly_pitch_um=base.poly_pitch_um * s,
        m1_pitch_um=base.m1_pitch_um * s,
        row_height_tracks=base.row_height_tracks,
        w_min_um=base.w_min_um * s,
    )


def cmos45() -> Technology:
    """45 nm scaled preset (retargeting tests)."""
    return _scaled_node(cmos65(), "cmos45", 45.0)


def cmos28() -> Technology:
    """28 nm scaled preset (retargeting tests)."""
    return _scaled_node(cmos65(), "cmos28", 28.0)


def cmos14() -> Technology:
    """14 nm-class scaled preset, the node of the paper's Fig. 1 study."""
    return _scaled_node(cmos65(), "cmos14", 14.0)


PRESETS = {
    "cmos65": cmos65,
    "cmos45": cmos45,
    "cmos28": cmos28,
    "cmos14": cmos14,
}


def by_name(name: str) -> Technology:
    """Instantiate a preset by name."""
    try:
        factory = PRESETS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from exc
    return factory()

"""Switch-level transistor electrical model.

Everything above the technology file sees transistors through this tiny
facade: an on-resistance, a gate capacitance, a diffusion capacitance and a
leakage current, all linear in drawn width.  The same model feeds both the
closed-form estimator (through logical effort) and the transient reference
simulator (as a voltage-controlled switch), which is what makes Table 1 an
apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TechnologyError
from .technology import Technology

NMOS = "nmos"
PMOS = "pmos"


@dataclass(frozen=True)
class Transistor:
    """A single MOS device of a given polarity and width.

    Parameters
    ----------
    kind:
        ``"nmos"`` or ``"pmos"``.
    w_um:
        Drawn width in micrometres.
    """

    kind: str
    w_um: float

    def __post_init__(self) -> None:
        if self.kind not in (NMOS, PMOS):
            raise TechnologyError(f"unknown transistor kind {self.kind!r}")
        if self.w_um <= 0:
            raise TechnologyError(
                f"transistor width must be positive, got {self.w_um}")

    def r_on(self, tech: Technology) -> float:
        """Effective on-resistance in ohms."""
        per_um = tech.r_on_n if self.kind == NMOS else tech.r_on_p
        return per_um / self.w_um

    def c_gate(self, tech: Technology) -> float:
        """Gate capacitance in farads."""
        return tech.c_gate * self.w_um

    def c_drain(self, tech: Technology) -> float:
        """Drain (diffusion) capacitance in farads."""
        return tech.c_diff * self.w_um

    def i_leak(self, tech: Technology) -> float:
        """Off-state leakage in amperes."""
        scale = 1.0 if self.kind == NMOS else 1.0 / tech.beta_p
        return tech.i_leak_n * self.w_um * scale

    def conductance(self, v_gs: float, tech: Technology) -> float:
        """Channel conductance (S) as a function of gate drive.

        A piecewise-linear switch model in the effective-resistance
        convention: zero below threshold, rising linearly to the full
        ``1 / r_on`` at the saturation drive ``v_sat_frac * vdd`` (not at
        the full rail) — short-channel devices are velocity-saturated and
        deliver their full effective drive well before Vgs reaches Vdd.
        ``v_gs`` is the gate-source voltage for NMOS and source-gate
        voltage for PMOS (i.e. pass the magnitude of the drive).
        """
        v_th = tech.v_th
        if v_gs <= v_th:
            return 0.0
        v_sat = tech.v_sat_frac * tech.vdd
        overdrive = min((v_gs - v_th) / max(v_sat - v_th, 1e-12), 1.0)
        return overdrive / self.r_on(tech)

"""Technology substrate: device, wire, corner and patterning models."""

from .corners import BEST, CORNERS, NOMINAL, WORST, Corner, corner
from .patterns import (
    BITCELL,
    EMPTY,
    LOGIC_CONVENTIONAL,
    LOGIC_REGULAR,
    PERIPHERY,
    Hotspot,
    PatternGrid,
    PatternRuleSet,
    find_hotspots,
    printability_score,
    scenario_bitcell_array,
    scenario_conventional_next_to_bitcells,
    scenario_regular_next_to_bitcells,
)
from .presets import PRESETS, by_name, cmos14, cmos28, cmos45, cmos65
from .technology import Technology
from .transistor import NMOS, PMOS, Transistor
from .wire import WireLayer

__all__ = [
    "BEST", "CORNERS", "NOMINAL", "WORST", "Corner", "corner",
    "BITCELL", "EMPTY", "LOGIC_CONVENTIONAL", "LOGIC_REGULAR", "PERIPHERY",
    "Hotspot", "PatternGrid", "PatternRuleSet", "find_hotspots",
    "printability_score", "scenario_bitcell_array",
    "scenario_conventional_next_to_bitcells",
    "scenario_regular_next_to_bitcells",
    "PRESETS", "by_name", "cmos14", "cmos28", "cmos45", "cmos65",
    "Technology", "NMOS", "PMOS", "Transistor", "WireLayer",
]

"""Parametric technology model.

The paper's flow is retargetable: "the memory brick compiler and performance
estimation tools ... are technology dependent [but] the underlying circuit
methodology and circuit formulas remain the same" (Section 6).  This module
is that retargeting surface — a :class:`Technology` instance carries every
electrical and geometric parameter the rest of the package consumes, and a
new node is supported by constructing a new instance (see
:mod:`repro.tech.presets`).

All resistances are expressed per micrometre of transistor width
(ohm * um), all device capacitances per micrometre of width (F / um), and
all wire parasitics per micrometre of length.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..errors import TechnologyError
from .wire import WireLayer


@dataclass(frozen=True)
class Technology:
    """Electrical and geometric parameters of a CMOS node.

    Parameters
    ----------
    name:
        Human-readable node name, e.g. ``"cmos65"``.
    node_nm:
        Drawn feature size in nanometres (65 for the paper's silicon).
    vdd:
        Nominal supply voltage in volts.
    temp_c:
        Nominal junction temperature in Celsius.
    r_on_n:
        Effective on-resistance of an NMOS device per um of width
        (ohm * um); an NMOS of width ``w`` um presents ``r_on_n / w`` ohms.
    beta_p:
        PMOS/NMOS drive-strength ratio; ``r_on_p = r_on_n * beta_p`` for
        equal widths.
    c_gate:
        Gate capacitance per um of transistor width (F / um).
    c_diff:
        Source/drain diffusion capacitance per um of width (F / um).
    v_th_frac:
        Threshold voltage as a fraction of ``vdd`` (used by the switch-level
        transistor model and by slew estimation).
    i_leak_n:
        NMOS subthreshold leakage per um of width at nominal conditions
        (A / um).  PMOS leakage is scaled by ``beta_p``.
    layers:
        Routing layers by name (``"M1"`` .. ).  Local (in-brick) routing
        uses ``local_layer``; block-level routing uses ``routing_layer``.
    poly_pitch_um / m1_pitch_um:
        Contacted poly and metal-1 pitches; all leaf-cell and bitcell
        geometry is expressed in these pitches so that pattern constructs
        snap to a common grid (Section 2.1).
    row_height_tracks:
        Standard-cell row height in M1 tracks.
    w_min_um:
        Minimum transistor width.
    """

    name: str
    node_nm: float
    vdd: float
    temp_c: float
    r_on_n: float
    beta_p: float
    c_gate: float
    c_diff: float
    v_th_frac: float
    i_leak_n: float
    layers: Dict[str, WireLayer] = field(default_factory=dict)
    #: Gate drive (fraction of vdd) at which a device reaches its full
    #: effective conductance (velocity-saturated switch model).
    v_sat_frac: float = 0.62
    local_layer: str = "M1"
    bitline_layer: str = "M2"
    routing_layer: str = "M3"
    poly_pitch_um: float = 0.26
    m1_pitch_um: float = 0.20
    row_height_tracks: int = 9
    w_min_um: float = 0.12

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise TechnologyError(f"vdd must be positive, got {self.vdd}")
        if self.r_on_n <= 0 or self.c_gate <= 0 or self.c_diff < 0:
            raise TechnologyError("device R/C parameters must be positive")
        if not 0.0 < self.v_th_frac < 1.0:
            raise TechnologyError(
                f"v_th_frac must be in (0, 1), got {self.v_th_frac}")
        if self.beta_p < 1.0:
            raise TechnologyError(
                f"beta_p is PMOS/NMOS resistance ratio and must be >= 1, "
                f"got {self.beta_p}")
        for required in (self.local_layer, self.bitline_layer,
                         self.routing_layer):
            if required not in self.layers:
                raise TechnologyError(f"missing wire layer {required!r}")

    # --- derived electrical quantities ------------------------------------

    @property
    def r_on_p(self) -> float:
        """Effective PMOS on-resistance per um of width (ohm * um)."""
        return self.r_on_n * self.beta_p

    @property
    def v_th(self) -> float:
        """Threshold voltage in volts."""
        return self.v_th_frac * self.vdd

    @property
    def row_height_um(self) -> float:
        """Standard-cell row height in micrometres."""
        return self.row_height_tracks * self.m1_pitch_um

    @property
    def tau(self) -> float:
        """Characteristic time constant of the node in seconds.

        Defined, as in the logical-effort literature, as the delay unit
        ``R * C`` of a minimum inverter: the on-resistance of a minimum
        NMOS times the gate capacitance of a minimum inverter input
        (``(1 + 1/beta_p_width) * w_min`` is folded into the inverter
        template instead; here we use the classic per-unit definition).
        """
        return (self.r_on_n / self.w_min_um) * (self.c_gate * self.w_min_um)

    def fo4_delay(self) -> float:
        """Fanout-of-4 inverter delay estimate in seconds.

        Uses the logical-effort estimate ``(p_inv + 4) * tau_eff`` with
        ``tau_eff = ln(2) * tau`` so the number corresponds to a 50 %
        crossing delay.  The 65 nm preset lands near the textbook ~25 ps.
        """
        # Parasitic delay of an inverter in tau units is c_diff/c_gate for
        # this first-order model (diffusion of both devices over gate of
        # both devices cancels the width ratio).
        p_inv = self.c_diff / self.c_gate
        return 0.69 * (p_inv + 4.0) * self.tau

    def inverter_beta(self) -> float:
        """PMOS/NMOS width ratio used in inverter templates.

        Chosen as ``sqrt(beta_p)`` — the classic compromise between equal
        rise/fall (ratio ``beta_p``) and minimum average delay (ratio 1).
        """
        return self.beta_p ** 0.5

    def layer(self, name: str) -> WireLayer:
        """Return the :class:`WireLayer` called ``name``."""
        try:
            return self.layers[name]
        except KeyError as exc:
            raise TechnologyError(f"unknown wire layer {name!r}") from exc

    # --- corner application -----------------------------------------------

    def scaled(self, r_scale: float = 1.0, c_scale: float = 1.0,
               vdd_scale: float = 1.0, leak_scale: float = 1.0,
               name_suffix: str = "") -> "Technology":
        """Return a copy with device/wire R, C, Vdd and leakage scaled.

        Used both by PVT corners (:mod:`repro.tech.corners`) and by the
        Monte-Carlo silicon emulation (:mod:`repro.silicon.variation`).
        """
        if r_scale <= 0 or c_scale <= 0 or vdd_scale <= 0:
            raise TechnologyError("corner scale factors must be positive")
        scaled_layers = {
            key: layer.scaled(r_scale=r_scale, c_scale=c_scale)
            for key, layer in self.layers.items()
        }
        return replace(
            self,
            name=self.name + name_suffix,
            vdd=self.vdd * vdd_scale,
            r_on_n=self.r_on_n * r_scale,
            c_gate=self.c_gate * c_scale,
            c_diff=self.c_diff * c_scale,
            i_leak_n=self.i_leak_n * leak_scale,
            layers=scaled_layers,
        )

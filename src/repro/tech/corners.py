"""PVT corners.

Figure 4b of the paper reports simulations at *best*, *nominal* and *worst*
cases next to the spread of chip measurements.  A corner here is a simple
multiplicative derating of device/wire R and C and of the supply, applied
through :meth:`repro.tech.technology.Technology.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import TechnologyError
from .technology import Technology


@dataclass(frozen=True)
class Corner:
    """A process/voltage/temperature corner as derating factors."""

    name: str
    r_scale: float
    c_scale: float
    vdd_scale: float
    leak_scale: float = 1.0

    def apply(self, tech: Technology) -> Technology:
        """Return ``tech`` derated to this corner."""
        return tech.scaled(
            r_scale=self.r_scale,
            c_scale=self.c_scale,
            vdd_scale=self.vdd_scale,
            leak_scale=self.leak_scale,
            name_suffix=f"@{self.name}",
        )


NOMINAL = Corner("nominal", r_scale=1.0, c_scale=1.0, vdd_scale=1.0)
#: Fast silicon, fast wires, high supply — the "best case" of Fig 4b.
BEST = Corner("best", r_scale=0.82, c_scale=0.92, vdd_scale=1.08,
              leak_scale=2.5)
#: Slow silicon, slow wires, low supply — the "worst case" of Fig 4b.
WORST = Corner("worst", r_scale=1.22, c_scale=1.08, vdd_scale=0.92,
               leak_scale=0.5)

CORNERS: Dict[str, Corner] = {c.name: c for c in (NOMINAL, BEST, WORST)}


def corner(name: str) -> Corner:
    """Look up a corner by name (``"nominal"``, ``"best"``, ``"worst"``)."""
    try:
        return CORNERS[name]
    except KeyError as exc:
        raise TechnologyError(
            f"unknown corner {name!r}; choose from {sorted(CORNERS)}"
        ) from exc

"""Restrictive-patterning (pattern-construct) model.

Section 2.1 of the paper argues that sub-20 nm lithography forces layouts
onto a small set of pre-characterized *pattern constructs*, and Fig. 1 shows
SEM evidence for the three cases that motivate the whole methodology:

a. bitcells next to bitcells print fine;
b. conventional free-form standard cells next to bitcells create
   lithographic hotspots;
c. pattern-construct (regular) standard cells next to bitcells print fine.

We cannot reproduce SEM images, so we reproduce the *claim*: a layout is a
grid of tiles, each tile carries a pattern-construct tag, and a compatibility
relation between tags decides whether an adjacency is printable.  The three
scenarios of Fig. 1 become three grids whose hotspot counts reproduce the
ordering (a) = (c) = 0 hotspots, (b) > 0 hotspots.

The same checker runs on every generated brick layout, which is how the
layout generator guarantees "logic and embedded memory cells that are
tightly integrated without requiring extra spacing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..errors import PatternError

# Canonical construct tags.
BITCELL = "BC"          #: SRAM/CAM bitcell pattern.
LOGIC_REGULAR = "LR"    #: pattern-construct (gridded) logic.
LOGIC_CONVENTIONAL = "LC"  #: conventional free-form logic (2D jogs).
PERIPHERY = "PH"        #: pitch-matched leaf-cell periphery pattern.
EMPTY = "--"            #: empty tile (fill); compatible with everything.

_KNOWN_TAGS = (BITCELL, LOGIC_REGULAR, LOGIC_CONVENTIONAL, PERIPHERY, EMPTY)


@dataclass(frozen=True)
class Hotspot:
    """A lithographic hotspot between two adjacent tiles."""

    row: int
    col: int
    neighbor_row: int
    neighbor_col: int
    tag_a: str
    tag_b: str


@dataclass
class PatternRuleSet:
    """Adjacency compatibility between pattern constructs.

    ``incompatible`` holds unordered tag pairs that create a hotspot when
    the two tags touch.  The default rule set encodes Fig. 1: conventional
    logic is incompatible with bitcells and with periphery patterns, while
    regular logic and periphery are compatible with everything.
    """

    incompatible: Set[FrozenSet[str]] = field(default_factory=set)

    @classmethod
    def default(cls) -> "PatternRuleSet":
        """The sub-20 nm rule set motivating the paper (Fig. 1)."""
        rules = cls()
        rules.forbid(LOGIC_CONVENTIONAL, BITCELL)
        rules.forbid(LOGIC_CONVENTIONAL, PERIPHERY)
        return rules

    def forbid(self, tag_a: str, tag_b: str) -> None:
        """Mark the unordered pair (tag_a, tag_b) as hotspot-forming."""
        for tag in (tag_a, tag_b):
            if tag not in _KNOWN_TAGS:
                raise PatternError(f"unknown pattern tag {tag!r}")
        self.incompatible.add(frozenset((tag_a, tag_b)))

    def compatible(self, tag_a: str, tag_b: str) -> bool:
        """True when two tags may touch without a hotspot."""
        if EMPTY in (tag_a, tag_b):
            return True
        return frozenset((tag_a, tag_b)) not in self.incompatible


@dataclass
class PatternGrid:
    """A rectangular grid of pattern-construct tags.

    The grid abstracts a layout at tile granularity: a bitcell is one tile,
    a leaf cell or standard cell occupies one or more tiles.  Rows index
    from the bottom of the layout.
    """

    rows: int
    cols: int
    tags: List[List[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise PatternError("pattern grid dimensions must be positive")
        if not self.tags:
            self.tags = [[EMPTY] * self.cols for _ in range(self.rows)]
        if len(self.tags) != self.rows or any(
                len(row) != self.cols for row in self.tags):
            raise PatternError("tag matrix does not match grid dimensions")

    def set(self, row: int, col: int, tag: str) -> None:
        """Tag a single tile."""
        if tag not in _KNOWN_TAGS:
            raise PatternError(f"unknown pattern tag {tag!r}")
        self._check_bounds(row, col)
        self.tags[row][col] = tag

    def fill(self, row0: int, col0: int, rows: int, cols: int,
             tag: str) -> None:
        """Tag a rectangular region of tiles."""
        for r in range(row0, row0 + rows):
            for c in range(col0, col0 + cols):
                self.set(r, c, tag)

    def get(self, row: int, col: int) -> str:
        self._check_bounds(row, col)
        return self.tags[row][col]

    def _check_bounds(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise PatternError(
                f"tile ({row}, {col}) outside {self.rows}x{self.cols} grid")

    def adjacencies(self) -> Iterable[Tuple[int, int, int, int]]:
        """Yield each horizontal and vertical tile adjacency once."""
        for r in range(self.rows):
            for c in range(self.cols):
                if c + 1 < self.cols:
                    yield r, c, r, c + 1
                if r + 1 < self.rows:
                    yield r, c, r + 1, c

    def counts(self) -> Dict[str, int]:
        """Tile counts per tag (useful in reports and tests)."""
        result: Dict[str, int] = {}
        for row in self.tags:
            for tag in row:
                result[tag] = result.get(tag, 0) + 1
        return result


def find_hotspots(grid: PatternGrid,
                  rules: PatternRuleSet = None) -> List[Hotspot]:
    """Return every hotspot-forming adjacency in ``grid``."""
    if rules is None:
        rules = PatternRuleSet.default()
    hotspots = []
    for r0, c0, r1, c1 in grid.adjacencies():
        tag_a, tag_b = grid.get(r0, c0), grid.get(r1, c1)
        if not rules.compatible(tag_a, tag_b):
            hotspots.append(Hotspot(r0, c0, r1, c1, tag_a, tag_b))
    return hotspots


def printability_score(grid: PatternGrid,
                       rules: PatternRuleSet = None) -> float:
    """Fraction of adjacencies that print cleanly, in [0, 1].

    1.0 reproduces Fig. 1a/1c ("no impact on printability"); values below
    1.0 reproduce Fig. 1b.
    """
    adjacency_count = sum(1 for _ in grid.adjacencies())
    if adjacency_count == 0:
        return 1.0
    hotspot_count = len(find_hotspots(grid, rules))
    return 1.0 - hotspot_count / adjacency_count


# --- Fig. 1 scenario builders ---------------------------------------------

def scenario_bitcell_array(rows: int = 8, cols: int = 8) -> PatternGrid:
    """Fig. 1a — a plain bitcell array."""
    grid = PatternGrid(rows, cols)
    grid.fill(0, 0, rows, cols, BITCELL)
    return grid


def scenario_conventional_next_to_bitcells(
        rows: int = 8, array_cols: int = 4,
        logic_cols: int = 4) -> PatternGrid:
    """Fig. 1b — conventional standard cells abutting a bitcell array."""
    grid = PatternGrid(rows, array_cols + logic_cols)
    grid.fill(0, 0, rows, array_cols, BITCELL)
    grid.fill(0, array_cols, rows, logic_cols, LOGIC_CONVENTIONAL)
    return grid


def scenario_regular_next_to_bitcells(
        rows: int = 8, array_cols: int = 4,
        logic_cols: int = 4) -> PatternGrid:
    """Fig. 1c — pattern-construct standard cells abutting bitcells."""
    grid = PatternGrid(rows, array_cols + logic_cols)
    grid.fill(0, 0, rows, array_cols, BITCELL)
    grid.fill(0, array_cols, rows, logic_cols, LOGIC_REGULAR)
    return grid

"""Design-space exploration sweeps.

"Enabled by the automated brick generation, we performed rapid
design-space exploration to compare various system-level tradeoffs"
(Section 3, Fig. 4c).  :func:`sweep_partitions` reproduces that study:
for every (memory size, brick size) combination it compiles the brick,
generates its library model and records performance/energy/area — in
milliseconds per point, which is the paper's headline usability claim.

:func:`optimize_brick_selection` implements the paper's *future work*
(Section 6): let the flow pick the brick size like a standard-cell drive
selection instead of taking it as an input.

The module-level trio ``plan_sweep`` / ``sweep_partitions`` /
``execute_sweep_plan`` is **deprecated** in favour of the
:class:`~repro.explore.engine.SweepEngine` facade, which subsumes all
three behind one ``plan() -> run() -> frontier()`` shape and scales the
same sweep to 10^6 points.  The shims below keep old callers working
(identical results, a :class:`DeprecationWarning` on call); the private
``_plan_grid`` / ``_execute_grid`` / ``_sweep_partitions_impl``
functions are the warning-free implementations the engine's
small-sweep path and :class:`~repro.session.Session` delegate to.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bricks.spec import BrickSpec
from ..errors import ExplorationError
from ..obs.trace import maybe_span
from ..perf.characterize import estimate_points
from ..perf.fingerprint import cache_key
from ..perf.parallel import TaskFailure
from ..perf.timer import Stopwatch
from ..session import FaultEvent, Session
from ..tech.technology import Technology


@dataclass(frozen=True)
class SweepPoint:
    """One explored memory organization."""

    total_words: int
    bits: int
    brick_words: int
    stack: int
    read_delay: float
    read_energy: float
    write_energy: float
    area_um2: float
    leakage_w: float

    @property
    def label(self) -> str:
        return (f"{self.total_words}x{self.bits}b from "
                f"{self.brick_words}x{self.bits}b bricks "
                f"({self.stack}x)")

    def normalized(self, ref: "SweepPoint") -> Dict[str, float]:
        """Metrics normalized to a reference point (Fig. 4c's y-axes)."""
        return {
            "delay": self.read_delay / ref.read_delay,
            "energy": self.read_energy / ref.read_energy,
            "area": self.area_um2 / ref.area_um2,
        }


@dataclass(frozen=True)
class FailedPoint:
    """One design point the sweep skipped under ``keep_going``.

    ``index`` is the point's position in the sweep's deterministic
    enumeration (grid order for the Fig. 4c path, global lattice index
    for sharded sweeps); ``SweepResult.failures`` is sorted by it, so
    the failure list is identical regardless of executor completion
    order.  ``-1`` marks legacy records built before the field existed.
    """

    total_words: int
    bits: int
    brick_words: int
    stack: int
    error: str
    index: int = -1

    @property
    def label(self) -> str:
        return (f"{self.total_words}x{self.bits}b from "
                f"{self.brick_words}x{self.bits}b bricks")


@dataclass
class SweepResult:
    points: List[SweepPoint]
    wall_clock_s: float
    failures: List[FailedPoint] = field(default_factory=list)

    def filter(self, total_words: Optional[int] = None,
               bits: Optional[int] = None,
               brick_words: Optional[int] = None) -> List[SweepPoint]:
        selected = self.points
        if total_words is not None:
            selected = [p for p in selected
                        if p.total_words == total_words]
        if bits is not None:
            selected = [p for p in selected if p.bits == bits]
        if brick_words is not None:
            selected = [p for p in selected
                        if p.brick_words == brick_words]
        return selected

    def point(self, total_words: int, bits: int,
              brick_words: int) -> SweepPoint:
        matches = self.filter(total_words, bits, brick_words)
        if not matches:
            raise ExplorationError(
                f"no sweep point for {total_words}x{bits} from "
                f"{brick_words}-word bricks")
        return matches[0]


@dataclass(frozen=True)
class SweepPlan:
    """The pure planning half of a partition sweep.

    Built by :func:`plan_sweep` without touching the cache or the
    executor: the lattice ``grid`` (``(bits, brick_words, total_words,
    stack)`` rows), the characterization ``tasks`` in grid order, and a
    content ``fingerprint`` over every input that shapes the result —
    the identity a coalescing server shares one computation under (two
    clients asking for the same sweep against the same technology hash
    to the same plan).
    """

    grid: Tuple[Tuple[int, int, int, int], ...]
    tasks: Tuple[Tuple[BrickSpec, int], ...]
    memory_type: str
    fingerprint: str

    @property
    def n_points(self) -> int:
        return len(self.grid)


def _plan_grid(tech: Technology,
               total_words_options: Sequence[int] = (128,),
               bits_options: Sequence[int] = (8, 16, 32),
               brick_words_options: Sequence[int] = (16, 32, 64),
               memory_type: str = "8T") -> SweepPlan:
    """Lay out the sweep lattice and fingerprint it (no computation).

    Pure: safe to call on an event loop, and cheap enough to call per
    request just to learn the coalescing key.
    """
    grid: List[Tuple[int, int, int, int]] = []
    for bits in bits_options:
        for brick_words in brick_words_options:
            for total_words in total_words_options:
                if total_words % brick_words != 0:
                    continue
                stack = total_words // brick_words
                grid.append((bits, brick_words, total_words, stack))
    if not grid:
        raise ExplorationError("sweep produced no points")
    tasks = tuple((BrickSpec(memory_type, brick_words, bits), stack)
                  for bits, brick_words, _, stack in grid)
    fp = cache_key("sweep", memory_type, list(grid), tech)
    return SweepPlan(grid=tuple(grid), tasks=tasks,
                     memory_type=memory_type, fingerprint=fp)


def _sweep_partitions_impl(
        tech: Optional[Technology] = None,
        total_words_options: Sequence[int] = (128,),
        bits_options: Sequence[int] = (8, 16, 32),
        brick_words_options: Sequence[int] = (16, 32, 64),
        memory_type: str = "8T",
        jobs: Optional[int] = None,
        cache=None,
        keep_going: bool = False,
        session: Optional[Session] = None) -> SweepResult:
    """The Fig. 4c sweep: single-partition memories of each size built
    from each brick flavour.

    The default arguments are exactly the paper's: 128x{8,16,32} bit
    SRAMs built from 16/32/64-word bricks (9 brick compilations).
    The composition of :func:`plan_sweep` (pure lattice + fingerprint)
    and :func:`execute_sweep_plan` (blocking characterization) — the
    halves the brick-library server calls separately.

    Characterization routes through :mod:`repro.perf` under the
    resolved :class:`~repro.session.Session`: repeated points hit the
    content-addressed cache, cold points fan out over the session's
    ``jobs`` processes, and the returned point list is ordered
    identically regardless of ``jobs``.  The ``tech``/``jobs``/
    ``cache`` keywords are the deprecated pre-session shims.

    With ``keep_going=True`` a design point whose characterization
    fails is skipped and recorded (one :class:`FailedPoint` in
    ``SweepResult.failures`` plus a :class:`~repro.session.FaultEvent`
    on the session sink) instead of aborting the whole sweep; every
    healthy point still comes back, in grid order.  A sweep in which
    *every* point failed raises :class:`ExplorationError`.
    """
    session = Session.ensure(session, tech=tech, jobs=jobs, cache=cache)
    plan = _plan_grid(session.tech,
                      total_words_options=total_words_options,
                      bits_options=bits_options,
                      brick_words_options=brick_words_options,
                      memory_type=memory_type)
    return _execute_grid(plan, session, keep_going=keep_going)


def _execute_grid(plan: SweepPlan, session: Session,
                  keep_going: bool = False) -> SweepResult:
    """Run the blocking half of a :class:`SweepPlan` under ``session``.

    This is the function the server ships off the asyncio loop via
    ``run_in_executor``; everything it touches (cache, worker pool,
    tracer, metrics) comes from the session, so concurrent executions
    under one shared session are safe.
    """
    watch = Stopwatch()
    grid = plan.grid
    memory_type = plan.memory_type
    with maybe_span(session.tracer, "sweep_partitions", kind="sweep",
                    n_points=len(grid),
                    memory_type=memory_type) as sweep_span:
        estimates = estimate_points(list(plan.tasks), session.tech,
                                    jobs=session.jobs,
                                    cache=session.cache,
                                    keep_going=keep_going,
                                    tracer=session.tracer,
                                    sink=session.sink,
                                    metrics=session.metrics,
                                    pool=session.pool)
        points: List[SweepPoint] = []
        failures: List[FailedPoint] = []
        for grid_index, ((bits, brick_words, total_words, stack),
                         est) in enumerate(zip(grid, estimates)):
            spec_label = (f"{total_words}x{bits}b/"
                          f"{brick_words}w")
            if isinstance(est, TaskFailure):
                failed = FailedPoint(
                    total_words=total_words, bits=bits,
                    brick_words=brick_words, stack=stack,
                    error=f"{est.kind}: {est.error}",
                    index=grid_index)
                failures.append(failed)
                if session.tracer is not None:
                    pspan = session.tracer.open(
                        spec_label, kind="sweep_point", bits=bits,
                        brick_words=brick_words, stack=stack)
                    session.tracer.close(pspan, ok=False,
                                         error=failed.error)
                session.emit(FaultEvent(
                    domain="sweep", name=failed.label,
                    index=len(points) + len(failures) - 1,
                    error=failed.error, recovered=True))
                continue
            with maybe_span(session.tracer, spec_label,
                            kind="sweep_point", bits=bits,
                            brick_words=brick_words, stack=stack,
                            read_delay=est.read_delay,
                            area_um2=est.area_um2):
                pass
            points.append(SweepPoint(
                total_words=total_words,
                bits=bits,
                brick_words=brick_words,
                stack=stack,
                read_delay=est.read_delay,
                read_energy=est.read_energy,
                write_energy=est.write_energy,
                area_um2=est.area_um2,
                leakage_w=est.leakage_w,
            ))
        if sweep_span is not None:
            sweep_span.attrs.update(evaluated=len(points),
                                    skipped=len(failures))
    if session.metrics is not None:
        session.metrics.counter(
            "explore.sweep.points_evaluated").inc(len(points))
        session.metrics.counter(
            "explore.sweep.points_skipped").inc(len(failures))
    # Deterministic regardless of executor completion order: failures
    # always come back sorted by their grid position.
    failures.sort(key=lambda f: f.index)
    if not points:
        raise ExplorationError(
            f"every sweep point failed "
            f"({len(failures)} failures; first: "
            f"{failures[0].error})")
    return SweepResult(points, watch.elapsed(), failures=failures)


@dataclass(frozen=True)
class BrickChoice:
    """Result of automatic brick selection for one memory requirement."""

    point: SweepPoint
    objective_value: float


def _optimize_brick_selection_impl(
        tech: Optional[Technology] = None,
        total_words: int = 128, bits: int = 8,
        brick_words_options: Sequence[int] = (8, 16, 32, 64, 128),
        delay_weight: float = 1.0,
        energy_weight: float = 1.0,
        area_weight: float = 0.5,
        memory_type: str = "8T",
        jobs: Optional[int] = None,
        cache=None,
        session: Optional[Session] = None) -> BrickChoice:
    """Pick the brick size minimizing a weighted delay/energy/area cost.

    Implements the paper's Section 6 future work: "the synthesis tools
    could optimize the array size ... of the memory bricks in a standard
    cell like manner."  The cost is a weighted product of metrics
    normalized to the best candidate per axis, so weights express
    relative priorities without unit juggling.
    """
    session = Session.ensure(session, tech=tech, jobs=jobs, cache=cache)
    viable = tuple(bw for bw in brick_words_options
                   if total_words % bw == 0 and bw <= total_words)
    if not viable:
        raise ExplorationError(
            f"no brick size in {list(brick_words_options)} divides "
            f"{total_words}")
    result = _sweep_partitions_impl(
        total_words_options=(total_words,), bits_options=(bits,),
        brick_words_options=viable, memory_type=memory_type,
        session=session)
    candidates: List[SweepPoint] = result.points
    best_delay = min(p.read_delay for p in candidates)
    best_energy = min(p.read_energy for p in candidates)
    best_area = min(p.area_um2 for p in candidates)

    def cost(p: SweepPoint) -> float:
        return ((p.read_delay / best_delay) ** delay_weight
                * (p.read_energy / best_energy) ** energy_weight
                * (p.area_um2 / best_area) ** area_weight)

    winner = min(candidates, key=cost)
    return BrickChoice(point=winner, objective_value=cost(winner))


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        f"(see repro.explore.SweepEngine)",
        DeprecationWarning, stacklevel=3)


def plan_sweep(tech: Technology,
               total_words_options: Sequence[int] = (128,),
               bits_options: Sequence[int] = (8, 16, 32),
               brick_words_options: Sequence[int] = (16, 32, 64),
               memory_type: str = "8T") -> SweepPlan:
    """Deprecated shim: use ``SweepEngine(...).plan()``."""
    _deprecated("plan_sweep()", "SweepEngine(...).plan()")
    return _plan_grid(tech, total_words_options=total_words_options,
                      bits_options=bits_options,
                      brick_words_options=brick_words_options,
                      memory_type=memory_type)


def execute_sweep_plan(plan: SweepPlan, session: Session,
                       keep_going: bool = False) -> SweepResult:
    """Deprecated shim: use ``SweepEngine(...).run()``."""
    _deprecated("execute_sweep_plan()", "SweepEngine(...).run()")
    return _execute_grid(plan, session, keep_going=keep_going)


def sweep_partitions(tech: Optional[Technology] = None,
                     total_words_options: Sequence[int] = (128,),
                     bits_options: Sequence[int] = (8, 16, 32),
                     brick_words_options: Sequence[int] = (16, 32, 64),
                     memory_type: str = "8T",
                     jobs: Optional[int] = None,
                     cache=None,
                     keep_going: bool = False,
                     session: Optional[Session] = None) -> SweepResult:
    """Deprecated shim: use ``Session.sweep_partitions`` or
    ``SweepEngine(...).run().to_sweep_result()``."""
    _deprecated("sweep_partitions()", "Session.sweep_partitions() or "
                "SweepEngine(...).run()")
    return _sweep_partitions_impl(
        tech=tech, total_words_options=total_words_options,
        bits_options=bits_options,
        brick_words_options=brick_words_options,
        memory_type=memory_type, jobs=jobs, cache=cache,
        keep_going=keep_going, session=session)


def optimize_brick_selection(
        tech: Optional[Technology] = None,
        total_words: int = 128, bits: int = 8,
        brick_words_options: Sequence[int] = (8, 16, 32, 64, 128),
        delay_weight: float = 1.0,
        energy_weight: float = 1.0,
        area_weight: float = 0.5,
        memory_type: str = "8T",
        jobs: Optional[int] = None,
        cache=None,
        session: Optional[Session] = None) -> BrickChoice:
    """Deprecated shim: use ``Session.optimize_brick_selection``."""
    _deprecated("optimize_brick_selection()",
                "Session.optimize_brick_selection()")
    return _optimize_brick_selection_impl(
        tech=tech, total_words=total_words, bits=bits,
        brick_words_options=brick_words_options,
        delay_weight=delay_weight, energy_weight=energy_weight,
        area_weight=area_weight, memory_type=memory_type, jobs=jobs,
        cache=cache, session=session)

"""Sharded, streaming, resumable design-space exploration.

ROADMAP's million-point open item: the Fig. 4c sweep materializes every
priced point, which caps exploration around 10^4 candidates.  This
module prices a 10^5–10^6-point :class:`~repro.explore.lattice.Lattice`
in fixed-size *shards* instead:

* a shard worker (:func:`price_shard`) slices the lattice as numpy
  columns, rides :func:`repro.bricks.batch.estimate_metric_columns`
  (no per-point Python objects), reduces the slice to its local Pareto
  front with one :func:`~repro.explore.pareto.pareto_mask` call plus a
  deterministic top-K, and returns only those survivors;
* the engine (:mod:`repro.explore.engine`) fans shards over
  ``perf.parallel``, merges shard fronts into one online
  :class:`~repro.explore.pareto.ParetoAccumulator`, and checkpoints
  each completed shard in ``perf.cache`` under the plan fingerprint so
  a killed sweep resumes warm and reproduces an identical frontier.

Memory is bounded by ``frontier + top_k`` per shard and overall — the
full population is never held.  Every survivor carries its global
lattice ``index``, which keys all accumulator ordering, making the
result independent of shard completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bricks.batch import (
    BrickSpecBatch,
    compile_batch,
    estimate_metric_columns,
)
from ..bricks.compiler import compile_brick
from ..bricks.estimator import estimate_brick
from ..bricks.spec import BrickSpec
from ..errors import ExplorationError
from ..perf.fingerprint import cache_key
from ..perf.timer import Stopwatch
from ..tech.technology import Technology
from .lattice import Lattice, LatticePoint, SweepSpace
from .pareto import ParetoAccumulator, TopKAccumulator, pareto_mask
from .sweep import FailedPoint, SweepPoint

#: Metric columns a sweep may minimize over (as produced by
#: :func:`repro.bricks.batch.estimate_metric_columns`).
OBJECTIVE_COLUMNS = ("read_delay", "read_energy", "write_energy",
                     "area_um2", "leakage_w")

#: The default frontier objectives — the paper's Fig. 4c axes.
DEFAULT_OBJECTIVES = ("read_delay", "read_energy", "area_um2")


@dataclass(frozen=True)
class ScalePoint:
    """One priced lattice point (geometry + metrics + global index)."""

    index: int
    memory_type: str
    total_words: int
    bits: int
    brick_words: int
    stack: int
    read_delay: float
    read_energy: float
    write_energy: float
    area_um2: float
    leakage_w: float

    @property
    def label(self) -> str:
        return (f"{self.total_words}x{self.bits}b from "
                f"{self.brick_words}x{self.bits}b bricks "
                f"({self.stack}x)")

    def metric(self, name: str) -> float:
        if name not in OBJECTIVE_COLUMNS:
            raise ExplorationError(
                f"unknown objective {name!r}; "
                f"known: {OBJECTIVE_COLUMNS}")
        return float(getattr(self, name))

    def vector(self, objectives: Sequence[str]) -> Tuple[float, ...]:
        return tuple(self.metric(name) for name in objectives)

    def as_sweep_point(self) -> SweepPoint:
        """Downgrade to the legacy Fig. 4c point shape."""
        return SweepPoint(
            total_words=self.total_words, bits=self.bits,
            brick_words=self.brick_words, stack=self.stack,
            read_delay=self.read_delay, read_energy=self.read_energy,
            write_energy=self.write_energy, area_um2=self.area_um2,
            leakage_w=self.leakage_w)


@dataclass(frozen=True)
class ScaleFailure:
    """One lattice point skipped under ``keep_going``."""

    index: int
    memory_type: str
    total_words: int
    bits: int
    brick_words: int
    stack: int
    error: str

    @property
    def label(self) -> str:
        return (f"{self.total_words}x{self.bits}b from "
                f"{self.brick_words}x{self.bits}b bricks")

    def as_failed_point(self) -> FailedPoint:
        return FailedPoint(
            total_words=self.total_words, bits=self.bits,
            brick_words=self.brick_words, stack=self.stack,
            error=self.error, index=self.index)


@dataclass
class ShardResult:
    """Everything one shard contributes: survivors, never the bulk.

    ``frontier`` holds the shard-local Pareto entries as ``(key, point,
    vector)`` triples (key = global lattice index), ``top`` the shard's
    ``(score, key, point)`` best-by-score list.  This is also the
    checkpoint payload — picklable, and small (front + top-K, not
    ``stop - start`` points).
    """

    shard: int
    start: int
    stop: int
    n_priced: int
    frontier: List[Tuple[int, ScalePoint, Tuple[float, ...]]]
    top: List[Tuple[float, int, ScalePoint]]
    failures: List[ScaleFailure] = field(default_factory=list)
    wall_clock_s: float = 0.0

    @property
    def n_points(self) -> int:
        return self.stop - self.start


def shard_checkpoint_key(fingerprint: str, keep_going: bool,
                         shard: int) -> str:
    """Cache key one shard's completion record lives under."""
    return cache_key("explore-shard", fingerprint, keep_going, shard)


def _column_kernel(lattice: Lattice, start: int, stop: int,
                   tech: Technology) -> Dict[str, np.ndarray]:
    """Price ``[start, stop)`` as pure metric columns.

    Separate function so tests can monkeypatch it to force the scalar
    fallback path (mirroring ``perf.characterize._batch_kernel``).
    """
    cols = lattice.columns(start, stop)
    batch = BrickSpecBatch(memory_code=cols["memory_code"],
                           words=cols["words"], bits=cols["bits"],
                           stack=cols["stack"])
    return estimate_metric_columns(compile_batch(batch, tech), tech)


def _scalar_fallback(points: Sequence[LatticePoint], tech: Technology,
                     keep_going: bool
                     ) -> Tuple[Dict[str, np.ndarray], np.ndarray,
                                List[ScaleFailure]]:
    """Per-point pricing when the vector kernel fails.

    Returns compacted metric columns, the global indices they cover,
    and the failures (under ``keep_going``; otherwise the first error
    propagates).
    """
    names = OBJECTIVE_COLUMNS
    columns: Dict[str, List[float]] = {name: [] for name in names}
    indices: List[int] = []
    failures: List[ScaleFailure] = []
    for point in points:
        try:
            spec = BrickSpec(point.memory_type, point.brick_words,
                             point.bits)
            compiled = compile_brick(spec, tech,
                                     target_stack=point.stack)
            perf = estimate_brick(compiled, tech, stack=point.stack)
        except Exception as exc:
            if not keep_going:
                raise
            failures.append(ScaleFailure(
                index=point.index, memory_type=point.memory_type,
                total_words=point.total_words, bits=point.bits,
                brick_words=point.brick_words, stack=point.stack,
                error=f"{type(exc).__name__}: {exc}"))
            continue
        indices.append(point.index)
        for name in names:
            columns[name].append(float(getattr(perf, name)))
    packed = {name: np.asarray(values, dtype=np.float64)
              for name, values in columns.items()}
    return packed, np.asarray(indices, dtype=np.int64), failures


def price_shard(space: SweepSpace, shard: int, start: int, stop: int,
                tech: Technology,
                objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                top_k: int = 16,
                keep_going: bool = False) -> ShardResult:
    """Price one lattice slice and reduce it to its survivors.

    Vector path first (columns in, columns out, one
    :func:`~repro.explore.pareto.pareto_mask` reduction); on kernel
    failure falls back to per-point scalar pricing, recording
    :class:`ScaleFailure` entries when ``keep_going``.  Only the local
    front and top-K materialize as :class:`ScalePoint` objects.
    """
    watch = Stopwatch()
    lattice = Lattice(space)
    failures: List[ScaleFailure] = []
    try:
        columns = _column_kernel(lattice, start, stop, tech)
        indices = np.arange(start, stop, dtype=np.int64)
    except Exception:
        columns, indices, failures = _scalar_fallback(
            lattice.points(start, stop), tech, keep_going)
    frontier, top = _reduce(columns, indices, lattice.point,
                            objectives, top_k)
    failures.sort(key=lambda f: f.index)
    return ShardResult(shard=shard, start=start, stop=stop,
                       n_priced=int(indices.shape[0]),
                       frontier=frontier.entries(),
                       top=top.entries(),
                       failures=failures,
                       wall_clock_s=watch.elapsed())


def _reduce(columns: Dict[str, np.ndarray], indices: np.ndarray,
            point_of, objectives: Sequence[str], top_k: int
            ) -> Tuple[ParetoAccumulator, TopKAccumulator]:
    """Pareto + top-K reduction of priced columns.

    ``point_of(global_index)`` supplies the geometry of one point
    (a :class:`~repro.explore.lattice.LatticePoint`); only surviving
    rows are materialized as :class:`ScalePoint` objects.
    """
    n = int(indices.shape[0])
    frontier = ParetoAccumulator()
    top = TopKAccumulator(top_k)
    if not n:
        return frontier, top
    matrix = np.stack([columns[name] for name in objectives], axis=1)
    # Product of the objective columns: a scale-free scalar aggregate
    # (energy-delay-area product for the defaults) that is computable
    # shard-locally, so top-K needs no global pass.
    score = matrix.prod(axis=1)
    keep = np.flatnonzero(pareto_mask(matrix))
    if top.k:
        k = min(top.k, n)
        best = np.argpartition(score, k - 1)[:k]
        wanted = np.union1d(keep, best)
    else:
        best = np.zeros(0, dtype=np.int64)
        wanted = keep
    survivors = {int(row): _materialize(point_of, columns, indices,
                                        int(row))
                 for row in wanted}
    for row in keep:
        point = survivors[int(row)]
        frontier.add(point.index, point, matrix[int(row)].tolist())
    for row in best:
        point = survivors[int(row)]
        top.add(point.index, point, float(score[int(row)]))
    return frontier, top


def _materialize(point_of, columns: Dict[str, np.ndarray],
                 indices: np.ndarray, row: int) -> ScalePoint:
    """Build the full :class:`ScalePoint` for one surviving row."""
    point = point_of(int(indices[row]))
    return ScalePoint(
        index=point.index, memory_type=point.memory_type,
        total_words=point.total_words, bits=point.bits,
        brick_words=point.brick_words, stack=point.stack,
        read_delay=float(columns["read_delay"][row]),
        read_energy=float(columns["read_energy"][row]),
        write_energy=float(columns["write_energy"][row]),
        area_um2=float(columns["area_um2"][row]),
        leakage_w=float(columns["leakage_w"][row]))


def price_combos(combos: Sequence[Tuple[str, int, int, int]],
                 tech: Technology,
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 top_k: int = 16,
                 keep_going: bool = False,
                 start_index: int = 0,
                 shard: int = -1) -> ShardResult:
    """Price an explicit ``(memory_type, total_words, bits,
    brick_words)`` candidate list — the refinement pass's off-lattice
    midpoints.  Indices continue from ``start_index`` so refined points
    never collide with lattice keys.
    """
    points = [LatticePoint(index=start_index + i, memory_type=mt,
                           total_words=tw, bits=bits, brick_words=bw,
                           stack=tw // bw)
              for i, (mt, tw, bits, bw) in enumerate(combos)]
    by_index = {p.index: p for p in points}
    failures: List[ScaleFailure] = []
    try:
        batch = BrickSpecBatch.from_arrays(
            [p.memory_type for p in points],
            [p.brick_words for p in points],
            [p.bits for p in points],
            [p.stack for p in points])
        columns = estimate_metric_columns(compile_batch(batch, tech),
                                          tech)
        indices = np.asarray([p.index for p in points],
                             dtype=np.int64)
    except Exception:
        columns, indices, failures = _scalar_fallback(points, tech,
                                                      keep_going)
    frontier, top = _reduce(columns, indices, by_index.__getitem__,
                            objectives, top_k)
    failures.sort(key=lambda f: f.index)
    return ShardResult(shard=shard, start=start_index,
                       stop=start_index + len(points),
                       n_priced=int(indices.shape[0]),
                       frontier=frontier.entries(),
                       top=top.entries(),
                       failures=failures)


def _shard_worker(task: Tuple) -> ShardResult:
    """Top-level picklable entry point for ``perf.parallel`` workers."""
    space, shard, start, stop, tech, objectives, top_k, keep_going = \
        task
    return price_shard(space, shard, start, stop, tech,
                       objectives=objectives, top_k=top_k,
                       keep_going=keep_going)


def shard_bounds(n_points: int,
                 shard_size: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_points)`` into ``shard_size``-point slices."""
    if shard_size < 1:
        raise ExplorationError(
            f"shard size must be >= 1, got {shard_size}")
    return [(start, min(start + shard_size, n_points))
            for start in range(0, n_points, shard_size)]


def refine_candidates(space: SweepSpace,
                      frontier: Sequence[ScalePoint],
                      lattice: Optional[Lattice] = None,
                      exclude: Optional[set] = None
                      ) -> List[Tuple[str, int, int, int]]:
    """Successive-halving zoom: midpoint candidates around the frontier.

    For every frontier point and every numeric axis, offer the
    midpoints between the point's value and its nearest lattice
    neighbours (rounded down), keeping only combinations that satisfy
    the divisibility constraint and are not already on the lattice (or
    in ``exclude`` — combos priced by earlier refinement rounds).
    Returns deduplicated ``(memory_type, total_words, bits,
    brick_words)`` rows in deterministic order.
    """
    lattice = lattice if lattice is not None else Lattice(space)
    axes = {
        "total_words": sorted(set(space.total_words_options)),
        "bits": sorted(set(space.bits_options)),
        "brick_words": sorted(set(space.brick_words_options)),
    }
    seen = set(exclude) if exclude else set()
    out: List[Tuple[str, int, int, int]] = []
    for point in frontier:
        base = {"total_words": point.total_words, "bits": point.bits,
                "brick_words": point.brick_words}
        for axis, options in axes.items():
            for neighbour in _neighbours(options, base[axis]):
                mid = (base[axis] + neighbour) // 2
                if mid == base[axis] or mid < 1:
                    continue
                trial = dict(base)
                trial[axis] = mid
                combo = (point.memory_type, trial["total_words"],
                         trial["bits"], trial["brick_words"])
                if combo in seen:
                    continue
                seen.add(combo)
                if trial["total_words"] % trial["brick_words"] != 0:
                    continue
                if lattice.contains(point.memory_type,
                                    trial["total_words"],
                                    trial["bits"],
                                    trial["brick_words"]):
                    continue
                out.append(combo)
    return out


def _neighbours(options: Sequence[int], value: int) -> List[int]:
    """The lattice values flanking ``value`` on one axis."""
    below = [v for v in options if v < value]
    above = [v for v in options if v > value]
    out: List[int] = []
    if below:
        out.append(below[-1])
    if above:
        out.append(above[0])
    return out

"""Pareto-front extraction.

The paper's synthesis flow "enables rapid design-space exploration for
the overall system by generating pareto-curves of possible block designs"
(Section 1).  This module extracts non-dominated sets from sweep results
over arbitrary metric tuples.

Two shapes of extraction coexist:

* :func:`pareto_front` — the one-shot object API over a materialized
  point list (the 9-point Fig. 4c path).
* :func:`pareto_mask` + :class:`ParetoAccumulator` — the streaming
  array path the sharded million-point explorer rides: each shard is
  reduced to its local front with one vectorized mask, then the shard
  fronts merge online into a bounded non-dominated archive whose final
  ordering is independent of merge order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import ExplorationError

T = TypeVar("T")

#: Extracts the metric vector (all minimized) from a design point.
MetricFn = Callable[[T], Tuple[float, ...]]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better
    somewhere (minimization)."""
    if len(a) != len(b):
        raise ExplorationError("metric vectors must have equal length")
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_front(points: Sequence[T], metrics: MetricFn) -> List[T]:
    """Return the non-dominated subset of ``points``.

    Stable: survivors keep their input order.  Duplicate metric vectors
    all survive (none strictly dominates another).
    """
    vectors = [metrics(p) for p in points]
    front: List[T] = []
    for i, point in enumerate(points):
        if any(dominates(vectors[j], vectors[i])
               for j in range(len(points)) if j != i):
            continue
        front.append(point)
    return front


def pareto_mask(vectors: Any) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``(n, k)`` array.

    Vectorized counterpart of :func:`pareto_front` with identical
    semantics (minimization; duplicate rows all survive).  Cost is
    ``O(n * f)`` array work where ``f`` is the front size, so a
    10^5-row shard reduces in milliseconds.
    """
    costs = np.asarray(vectors, dtype=np.float64)
    if costs.ndim != 2:
        raise ExplorationError(
            f"pareto_mask needs an (n, k) metric array, "
            f"got shape {costs.shape}")
    n = costs.shape[0]
    survivors = np.arange(n)
    pivot = 0
    while pivot < costs.shape[0]:
        v = costs[pivot]
        # Keep rows the pivot does NOT dominate: better somewhere, or
        # exactly equal everywhere (duplicates survive, as in
        # pareto_front).
        keep = (costs < v).any(axis=1) | (costs == v).all(axis=1)
        keep[pivot] = True
        survivors = survivors[keep]
        costs = costs[keep]
        pivot = int(keep[:pivot].sum()) + 1
    mask = np.zeros(n, dtype=bool)
    mask[survivors] = True
    return mask


class ParetoAccumulator:
    """Online non-dominated archive with order-independent output.

    Entries are ``(key, item, vector)`` triples: ``key`` is any stable
    orderable identity (the sharded sweep uses the global point index),
    ``vector`` the minimized metric tuple.  :meth:`add` keeps the
    archive non-dominated after every insertion; :meth:`merge` folds in
    another accumulator (shard fronts arriving in completion order);
    :meth:`front` returns the surviving items sorted by key — so any
    interleaving of adds and merges over the same population yields the
    same front as a full-materialization :func:`pareto_front` pass.

    Memory is bounded by the front size, never the population size.
    """

    def __init__(self) -> None:
        self._keys: List[Any] = []
        self._items: List[Any] = []
        self._vectors: List[Tuple[float, ...]] = []

    def __len__(self) -> int:
        return len(self._items)

    def add(self, key: Any, item: Any,
            vector: Sequence[float]) -> bool:
        """Offer one point; returns whether it joined the archive."""
        vec = tuple(float(v) for v in vector)
        for existing in self._vectors:
            if dominates(existing, vec):
                return False
        keep = [i for i, existing in enumerate(self._vectors)
                if not dominates(vec, existing)]
        if len(keep) != len(self._vectors):
            self._keys = [self._keys[i] for i in keep]
            self._items = [self._items[i] for i in keep]
            self._vectors = [self._vectors[i] for i in keep]
        self._keys.append(key)
        self._items.append(item)
        self._vectors.append(vec)
        return True

    def add_array(self, keys: Sequence[Any], items: Sequence[Any],
                  vectors: Any) -> int:
        """Bulk-offer a population (one shard); returns survivors kept.

        The candidates are first reduced with one :func:`pareto_mask`
        call, then only the local front rows go through :meth:`add`.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if not len(keys):
            return 0
        kept = 0
        for i in np.flatnonzero(pareto_mask(vectors)):
            kept += int(self.add(keys[i], items[i], vectors[i]))
        return kept

    def merge(self, other: "ParetoAccumulator") -> None:
        """Fold another archive into this one."""
        for key, item, vec in zip(other._keys, other._items,
                                  other._vectors):
            self.add(key, item, vec)

    def entries(self) -> List[Tuple[Any, Any, Tuple[float, ...]]]:
        """``(key, item, vector)`` triples sorted by key."""
        order = sorted(range(len(self._keys)),
                       key=lambda i: self._keys[i])
        return [(self._keys[i], self._items[i], self._vectors[i])
                for i in order]

    def front(self) -> List[Any]:
        """The archived items, sorted by key (deterministic)."""
        return [item for _, item, _ in self.entries()]


class TopKAccumulator:
    """Keep the ``k`` best items by a scalar score (minimized).

    Deterministic under any offer order: ties break on ``key`` (the
    global point index in the sharded sweep), so a resumed or
    differently-scheduled sweep reports the same top-K list.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ExplorationError(f"top-k must be >= 0, got {k}")
        self.k = k
        # Max-heap of (-score, -key) -> (score, key, item): the root is
        # the worst kept entry, evicted when a better offer arrives.
        self._heap: List[Tuple[float, Any, int, Any]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, key: Any, item: Any, score: float) -> bool:
        if self.k == 0:
            return False
        entry = (-float(score), _NegatedKey(key), self._counter, item)
        self._counter += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def merge(self, other: "TopKAccumulator") -> None:
        for neg_score, neg_key, _, item in list(other._heap):
            self.add(neg_key.value, item, -neg_score)

    def entries(self) -> List[Tuple[float, Any, Any]]:
        """``(score, key, item)`` sorted best-first (score, then key)."""
        ordered = sorted(((-neg_score, neg_key.value, item)
                          for neg_score, neg_key, _, item in self._heap),
                         key=lambda e: (e[0], e[1]))
        return ordered

    def top(self) -> List[Any]:
        return [item for _, _, item in self.entries()]


class _NegatedKey:
    """Reverses the ordering of a key so a min-heap acts as max-heap."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_NegatedKey") -> bool:
        return other.value < self.value

    def __gt__(self, other: "_NegatedKey") -> bool:
        return other.value > self.value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _NegatedKey)
                and other.value == self.value)


def knee_point(points: Sequence[T], metrics: MetricFn) -> T:
    """The balanced design: minimal normalized distance to the utopia
    point of the front."""
    front = pareto_front(points, metrics)
    if not front:
        raise ExplorationError("empty point set")
    vectors = [metrics(p) for p in front]
    dims = len(vectors[0])
    mins = [min(v[d] for v in vectors) for d in range(dims)]
    maxs = [max(v[d] for v in vectors) for d in range(dims)]

    def distance(v: Sequence[float]) -> float:
        total = 0.0
        for d in range(dims):
            span = maxs[d] - mins[d]
            norm = 0.0 if span == 0 else (v[d] - mins[d]) / span
            total += norm * norm
        return total

    best_index = min(range(len(front)),
                     key=lambda i: distance(vectors[i]))
    return front[best_index]

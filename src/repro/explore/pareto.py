"""Pareto-front extraction.

The paper's synthesis flow "enables rapid design-space exploration for
the overall system by generating pareto-curves of possible block designs"
(Section 1).  This module extracts non-dominated sets from sweep results
over arbitrary metric tuples.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

from ..errors import ExplorationError

T = TypeVar("T")

#: Extracts the metric vector (all minimized) from a design point.
MetricFn = Callable[[T], Tuple[float, ...]]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better
    somewhere (minimization)."""
    if len(a) != len(b):
        raise ExplorationError("metric vectors must have equal length")
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_front(points: Sequence[T], metrics: MetricFn) -> List[T]:
    """Return the non-dominated subset of ``points``.

    Stable: survivors keep their input order.  Duplicate metric vectors
    all survive (none strictly dominates another).
    """
    vectors = [metrics(p) for p in points]
    front: List[T] = []
    for i, point in enumerate(points):
        if any(dominates(vectors[j], vectors[i])
               for j in range(len(points)) if j != i):
            continue
        front.append(point)
    return front


def knee_point(points: Sequence[T], metrics: MetricFn) -> T:
    """The balanced design: minimal normalized distance to the utopia
    point of the front."""
    front = pareto_front(points, metrics)
    if not front:
        raise ExplorationError("empty point set")
    vectors = [metrics(p) for p in front]
    dims = len(vectors[0])
    mins = [min(v[d] for v in vectors) for d in range(dims)]
    maxs = [max(v[d] for v in vectors) for d in range(dims)]

    def distance(v: Sequence[float]) -> float:
        total = 0.0
        for d in range(dims):
            span = maxs[d] - mins[d]
            norm = 0.0 if span == 0 else (v[d] - mins[d]) / span
            total += norm * norm
        return total

    best_index = min(range(len(front)),
                     key=lambda i: distance(vectors[i]))
    return front[best_index]

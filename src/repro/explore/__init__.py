"""Design-space exploration: sweeps, pareto fronts, design generation.

The supported sweep entry point is :class:`SweepEngine` — one facade
for everything from the 9-point Fig. 4c study to a million-point
sharded, checkpointed lattice sweep (``plan() -> run() ->
iter_results()/frontier()``).  The module-level ``plan_sweep`` /
``sweep_partitions`` / ``execute_sweep_plan`` trio remains as
deprecated shims.
"""

from .chip_gen import (
    DesignTemplate,
    generate_variants,
    mac_core_generator,
    mac_template,
)
from .engine import (
    AUTO_SHARD_THRESHOLD,
    ScalePlan,
    ScaleResult,
    SweepEngine,
)
from .lattice import Lattice, LatticePoint, SweepSpace
from .pareto import (
    ParetoAccumulator,
    TopKAccumulator,
    dominates,
    knee_point,
    pareto_front,
    pareto_mask,
)
from .scale import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_COLUMNS,
    ScaleFailure,
    ScalePoint,
    ShardResult,
    price_combos,
    price_shard,
    refine_candidates,
    shard_bounds,
    shard_checkpoint_key,
)
from .sweep import (
    BrickChoice,
    FailedPoint,
    SweepPlan,
    SweepPoint,
    SweepResult,
    execute_sweep_plan,
    optimize_brick_selection,
    plan_sweep,
    sweep_partitions,
)

__all__ = [
    "DesignTemplate", "generate_variants", "mac_core_generator",
    "mac_template",
    "AUTO_SHARD_THRESHOLD", "ScalePlan", "ScaleResult", "SweepEngine",
    "Lattice", "LatticePoint", "SweepSpace",
    "ParetoAccumulator", "TopKAccumulator", "dominates", "knee_point",
    "pareto_front", "pareto_mask",
    "DEFAULT_OBJECTIVES", "OBJECTIVE_COLUMNS", "ScaleFailure",
    "ScalePoint", "ShardResult", "price_combos", "price_shard",
    "refine_candidates", "shard_bounds", "shard_checkpoint_key",
    "BrickChoice", "FailedPoint", "SweepPlan", "SweepPoint",
    "SweepResult", "execute_sweep_plan", "optimize_brick_selection",
    "plan_sweep", "sweep_partitions",
]

"""Design-space exploration: sweeps, pareto fronts, design generation."""

from .chip_gen import (
    DesignTemplate,
    generate_variants,
    mac_core_generator,
    mac_template,
)
from .pareto import dominates, knee_point, pareto_front
from .sweep import (
    BrickChoice,
    FailedPoint,
    SweepPlan,
    SweepPoint,
    SweepResult,
    execute_sweep_plan,
    optimize_brick_selection,
    plan_sweep,
    sweep_partitions,
)

__all__ = [
    "DesignTemplate", "generate_variants", "mac_core_generator",
    "mac_template",
    "dominates", "knee_point", "pareto_front",
    "BrickChoice", "FailedPoint", "SweepPlan", "SweepPoint",
    "SweepResult", "execute_sweep_plan", "optimize_brick_selection",
    "plan_sweep", "sweep_partitions",
]

"""The redesigned exploration facade: one engine for sweeps of any size.

:class:`SweepEngine` subsumes the deprecated ``plan_sweep`` /
``sweep_partitions`` / ``execute_sweep_plan`` trio behind a single
``plan() -> run() -> iter_results()/frontier()`` shape:

* **cached mode** (small sweeps, the Fig. 4c path): delegates to the
  historical grid executor, so per-point cache keys, tracing spans and
  rendered tables stay byte-identical with every release before the
  redesign — and all priced points are retained.
* **sharded mode** (10^5–10^6-point lattices): fans fixed-size shards
  over :func:`repro.perf.parallel.parallel_imap`, folds each completed
  shard's local Pareto front and top-K into online accumulators, and
  checkpoints every shard in ``perf.cache`` under the plan fingerprint
  — memory stays bounded by ``frontier + top_k`` and a killed sweep
  resumes warm, reproducing a byte-identical frontier.

``mode="auto"`` (the default) picks cached below
:data:`AUTO_SHARD_THRESHOLD` points and sharded above it, so callers
never choose; :meth:`SweepEngine.refine` adds successive-halving zoom
rounds around the frontier after either mode.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ExplorationError
from ..obs.trace import maybe_span
from ..perf.characterize import _executor_fault_sink
from ..perf.fingerprint import cache_key
from ..perf.parallel import TraceTap, parallel_imap
from ..perf.timer import Stopwatch
from ..session import FaultEvent, Session
from .lattice import Lattice, SweepSpace
from .pareto import ParetoAccumulator, TopKAccumulator
from .scale import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_COLUMNS,
    ScaleFailure,
    ScalePoint,
    ShardResult,
    _shard_worker,
    price_combos,
    refine_candidates,
    shard_bounds,
    shard_checkpoint_key,
)
from .sweep import (
    SweepResult,
    _execute_grid,
    _plan_grid,
)

#: Lattices up to this many points run the exact legacy cached path
#: under ``mode="auto"``; larger ones go sharded.
AUTO_SHARD_THRESHOLD = 512

#: Callback observing shard completion: ``progress(done, total,
#: shard_result)``.  The serve layer uses it to surface
#: ``shards_done/total`` in ``client stats``.
ProgressCallback = Callable[[int, int, ShardResult], None]


@dataclass(frozen=True)
class ScalePlan:
    """The pure planning half of an engine run.

    Cheap to build (no pricing, no cache traffic): the serve layer
    calls it per request just to learn the coalescing ``fingerprint``.
    ``shards`` is the ``(start, stop)`` slicing of the lattice; cached
    mode plans exactly one shard spanning everything.
    """

    space: SweepSpace
    objectives: Tuple[str, ...]
    top_k: int
    shard_size: int
    mode: str
    n_points: int
    shards: Tuple[Tuple[int, int], ...]
    fingerprint: str

    @property
    def n_shards(self) -> int:
        return len(self.shards)


@dataclass
class ScaleResult:
    """What a run keeps: survivors, never the population.

    ``frontier`` is the Pareto archive over ``objectives`` sorted by
    global lattice index; ``top`` the ``(score, point)`` best-K by the
    objective-product score.  ``points`` is only populated in cached
    mode (where the legacy path materializes everything anyway) — in
    sharded mode it stays ``None`` so memory is bounded.
    """

    mode: str
    objectives: Tuple[str, ...]
    n_points: int
    n_priced: int
    shards_total: int
    shards_done: int
    resumed_shards: int
    frontier: List[ScalePoint]
    top: List[Tuple[float, ScalePoint]]
    failures: List[ScaleFailure] = field(default_factory=list)
    wall_clock_s: float = 0.0
    points: Optional[List[ScalePoint]] = None
    refined_rounds: int = 0
    n_refined: int = 0

    def to_sweep_result(self) -> SweepResult:
        """Downgrade to the legacy :class:`SweepResult` shape.

        Cached mode carries every priced point, so the legacy result is
        complete; sharded mode only has the survivors (frontier order).
        """
        kept = self.points if self.points is not None else self.frontier
        return SweepResult(
            points=[p.as_sweep_point() for p in kept],
            wall_clock_s=self.wall_clock_s,
            failures=[f.as_failed_point() for f in self.failures])

    def frontier_json(self) -> str:
        """Canonical JSON of the frontier (byte-comparable).

        Two runs over the same plan — including one killed and resumed
        — must produce the exact same string.
        """
        payload = {
            "objectives": list(self.objectives),
            "n_points": self.n_points,
            "frontier": [
                {"index": p.index, "memory_type": p.memory_type,
                 "total_words": p.total_words, "bits": p.bits,
                 "brick_words": p.brick_words, "stack": p.stack,
                 "read_delay": p.read_delay,
                 "read_energy": p.read_energy,
                 "write_energy": p.write_energy,
                 "area_um2": p.area_um2, "leakage_w": p.leakage_w}
                for p in self.frontier],
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))


class SweepEngine:
    """Plan, run and stream one design-space sweep of any size.

    Construction resolves a :class:`~repro.session.Session` exactly
    like the legacy entry points (``tech``/``jobs``/``cache`` shims
    accepted); the exploration space comes either from a
    :class:`~repro.explore.lattice.SweepSpace` or the familiar
    per-axis keywords.  Typical use::

        engine = SweepEngine(session, bits_options=range(2, 34),
                             total_words_options=[64 * k
                                                  for k in range(1, 9)])
        result = engine.run()          # resumable, bounded memory
        for point in result.frontier:  # Pareto survivors by index
            ...
    """

    def __init__(self, session: Optional[Session] = None, *,
                 tech=None, jobs: Optional[int] = None, cache=None,
                 space: Optional[SweepSpace] = None,
                 total_words_options: Sequence[int] = (128,),
                 bits_options: Sequence[int] = (8, 16, 32),
                 brick_words_options: Sequence[int] = (16, 32, 64),
                 memory_type: str = "8T",
                 memory_types: Sequence[str] = (),
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 top_k: int = 16,
                 shard_size: int = 8192,
                 mode: str = "auto") -> None:
        self.session = Session.ensure(session, tech=tech, jobs=jobs,
                                      cache=cache)
        if space is None:
            space = SweepSpace.from_options(
                total_words_options=total_words_options,
                bits_options=bits_options,
                brick_words_options=brick_words_options,
                memory_type=memory_type, memory_types=memory_types)
        self.space = space
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ExplorationError("need at least one objective")
        for name in self.objectives:
            if name not in OBJECTIVE_COLUMNS:
                raise ExplorationError(
                    f"unknown objective {name!r}; "
                    f"known: {OBJECTIVE_COLUMNS}")
        if top_k < 0:
            raise ExplorationError(f"top_k must be >= 0, got {top_k}")
        if shard_size < 1:
            raise ExplorationError(
                f"shard_size must be >= 1, got {shard_size}")
        if mode not in ("auto", "cached", "sharded"):
            raise ExplorationError(
                f"mode must be auto/cached/sharded, got {mode!r}")
        self.top_k = top_k
        self.shard_size = shard_size
        self.mode = mode
        self._plan: Optional[ScalePlan] = None
        self._result: Optional[ScaleResult] = None
        self._refine_offset = 0
        self._refined_combos: set = set()

    # -- planning ----------------------------------------------------

    def plan(self) -> ScalePlan:
        """Lay out and fingerprint the sweep (pure, cached)."""
        if self._plan is not None:
            return self._plan
        lattice = Lattice(self.space)
        n = len(lattice)
        if n == 0:
            raise ExplorationError("sweep produced no points")
        mode = self.mode
        if mode == "auto":
            mode = ("cached"
                    if (n <= AUTO_SHARD_THRESHOLD
                        and len(self.space.memory_types) == 1)
                    else "sharded")
        if mode == "cached" and len(self.space.memory_types) != 1:
            raise ExplorationError(
                "cached mode sweeps a single memory type; "
                "use sharded mode for multi-type lattices")
        if mode == "cached":
            shards: Tuple[Tuple[int, int], ...] = ((0, n),)
        else:
            shards = tuple(shard_bounds(n, self.shard_size))
        space = self.space
        fp = cache_key("explore-plan", space.memory_types,
                       space.total_words_options, space.bits_options,
                       space.brick_words_options,
                       list(self.objectives), self.top_k,
                       self.shard_size, self.session.tech)
        self._plan = ScalePlan(space=space,
                               objectives=self.objectives,
                               top_k=self.top_k,
                               shard_size=self.shard_size, mode=mode,
                               n_points=n, shards=shards,
                               fingerprint=fp)
        return self._plan

    # -- execution ---------------------------------------------------

    def run(self, keep_going: bool = False, resume: bool = True,
            progress: Optional[ProgressCallback] = None
            ) -> ScaleResult:
        """Execute the whole sweep; returns the reduced result.

        ``resume=True`` (default) reuses per-shard checkpoints from the
        session cache — a previously killed run only re-prices shards
        that never completed.  ``progress`` observes each shard as it
        lands (including resumed ones).
        """
        plan = self.plan()
        if plan.mode == "cached":
            result = self._run_cached(plan, keep_going, progress)
        else:
            result = self._run_sharded(plan, keep_going, resume,
                                       progress)
        self._result = result
        self._refine_offset = plan.n_points
        self._refined_combos = set()
        return result

    def frontier(self) -> List[ScalePoint]:
        """The Pareto survivors (runs the sweep on first call)."""
        if self._result is None:
            self.run()
        return list(self._result.frontier)

    def iter_results(self) -> Iterator[ScalePoint]:
        """Stream the surviving points: frontier first (by index),
        then any top-K extras not already on the frontier."""
        if self._result is None:
            self.run()
        seen = set()
        for point in self._result.frontier:
            seen.add(point.index)
            yield point
        for _, point in self._result.top:
            if point.index not in seen:
                seen.add(point.index)
                yield point

    def iter_shards(self, keep_going: bool = False,
                    resume: bool = True) -> Iterator[ShardResult]:
        """Stream :class:`ShardResult` records as shards complete.

        Resumed (checkpointed) shards yield first, then fresh ones in
        completion order.  Consuming the whole iterator leaves
        :meth:`frontier` ready, exactly as :meth:`run` would.
        """
        plan = self.plan()
        collected: Dict[int, ShardResult] = {}

        def keep(done: int, total: int, shard: ShardResult) -> None:
            collected[shard.shard] = shard

        if plan.mode == "cached":
            result = self._run_cached(plan, keep_going, keep)
        else:
            watch = Stopwatch()
            for shard in self._sharded_stream(plan, keep_going,
                                              resume, keep):
                yield shard
            result = self._merge(plan, collected, watch.elapsed())
            self._result = result
            self._refine_offset = plan.n_points
            self._refined_combos = set()
            return
        self._result = result
        self._refine_offset = plan.n_points
        self._refined_combos = set()
        for shard_index in sorted(collected):
            yield collected[shard_index]

    # -- refinement --------------------------------------------------

    def refine(self, rounds: int = 1,
               keep_going: bool = False) -> ScaleResult:
        """Successive-halving zoom around the current frontier.

        Each round prices the midpoint candidates between frontier
        points and their lattice neighbours, folds the survivors into
        the frontier/top-K, and repeats on the (possibly moved)
        frontier.  Stops early when a round yields no new candidates.
        Refined points get indices past the lattice (``n_points +
        k``), so provenance stays unambiguous.
        """
        if rounds < 0:
            raise ExplorationError(
                f"rounds must be >= 0, got {rounds}")
        if self._result is None:
            self.run(keep_going=keep_going)
        result = self._result
        session = self.session
        frontier_acc, top_acc = self._rebuild_accumulators(result)
        for _ in range(rounds):
            combos = refine_candidates(self.space,
                                       frontier_acc.front(),
                                       exclude=self._refined_combos)
            if not combos:
                break
            shard = price_combos(combos, session.tech,
                                 objectives=self.objectives,
                                 top_k=self.top_k,
                                 keep_going=keep_going,
                                 start_index=self._refine_offset)
            self._refine_offset += len(combos)
            self._refined_combos.update(combos)
            for key, item, vec in shard.frontier:
                frontier_acc.add(key, item, vec)
            for score, key, item in shard.top:
                top_acc.add(key, item, score)
            result.failures.extend(shard.failures)
            result.n_priced += shard.n_priced
            result.n_refined += len(combos)
            result.refined_rounds += 1
            if session.metrics is not None:
                session.metrics.counter(
                    "explore.scale.refined_points").inc(len(combos))
        result.failures.sort(key=lambda f: f.index)
        result.frontier = frontier_acc.front()
        result.top = [(score, item)
                      for score, _, item in top_acc.entries()]
        return result

    # -- internals ---------------------------------------------------

    def _rebuild_accumulators(
            self, result: ScaleResult
    ) -> Tuple[ParetoAccumulator, TopKAccumulator]:
        frontier_acc = ParetoAccumulator()
        for point in result.frontier:
            frontier_acc.add(point.index, point,
                             point.vector(self.objectives))
        top_acc = TopKAccumulator(self.top_k)
        for score, point in result.top:
            top_acc.add(point.index, point, score)
        return frontier_acc, top_acc

    def _run_cached(self, plan: ScalePlan, keep_going: bool,
                    progress: Optional[ProgressCallback]
                    ) -> ScaleResult:
        """The exact legacy grid path, reduced to engine shape."""
        session = self.session
        space = plan.space
        memory_type = space.memory_types[0]
        legacy_plan = _plan_grid(
            session.tech,
            total_words_options=space.total_words_options,
            bits_options=space.bits_options,
            brick_words_options=space.brick_words_options,
            memory_type=memory_type)
        legacy = _execute_grid(legacy_plan, session,
                               keep_going=keep_going)
        failed = {f.index for f in legacy.failures}
        point_iter = iter(legacy.points)
        scale_points: List[ScalePoint] = []
        for i, (bits, brick_words, total_words,
                stack) in enumerate(legacy_plan.grid):
            if i in failed:
                continue
            p = next(point_iter)
            scale_points.append(ScalePoint(
                index=i, memory_type=memory_type,
                total_words=total_words, bits=bits,
                brick_words=brick_words, stack=stack,
                read_delay=p.read_delay, read_energy=p.read_energy,
                write_energy=p.write_energy, area_um2=p.area_um2,
                leakage_w=p.leakage_w))
        frontier_acc = ParetoAccumulator()
        top_acc = TopKAccumulator(self.top_k)
        for point in scale_points:
            vec = point.vector(self.objectives)
            frontier_acc.add(point.index, point, vec)
            score = 1.0
            for value in vec:
                score *= value
            top_acc.add(point.index, point, score)
        failures = [ScaleFailure(
            index=f.index, memory_type=memory_type,
            total_words=f.total_words, bits=f.bits,
            brick_words=f.brick_words, stack=f.stack, error=f.error)
            for f in legacy.failures]
        result = ScaleResult(
            mode="cached", objectives=self.objectives,
            n_points=plan.n_points, n_priced=len(scale_points),
            shards_total=1, shards_done=1, resumed_shards=0,
            frontier=frontier_acc.front(),
            top=[(score, item)
                 for score, _, item in top_acc.entries()],
            failures=failures, wall_clock_s=legacy.wall_clock_s,
            points=scale_points)
        if progress is not None:
            progress(1, 1, ShardResult(
                shard=0, start=0, stop=plan.n_points,
                n_priced=len(scale_points),
                frontier=frontier_acc.entries(),
                top=top_acc.entries(), failures=list(failures),
                wall_clock_s=legacy.wall_clock_s))
        return result

    def _sharded_stream(self, plan: ScalePlan, keep_going: bool,
                        resume: bool,
                        progress: Optional[ProgressCallback]
                        ) -> Iterator[ShardResult]:
        """Yield every shard (checkpointed first, then computed)."""
        session = self.session
        cache = session.cache
        done = 0
        todo: List[int] = []
        with maybe_span(session.tracer, "sweep_scale", kind="sweep",
                        n_points=plan.n_points,
                        shards=plan.n_shards,
                        mode="sharded") as span:
            for shard_index in range(plan.n_shards):
                key = shard_checkpoint_key(plan.fingerprint,
                                           keep_going, shard_index)
                if resume and cache is not None:
                    hit, value = cache.get(key)
                    if hit and isinstance(value, ShardResult):
                        done += 1
                        self._note_shard(value, resumed=True)
                        if progress is not None:
                            progress(done, plan.n_shards, value)
                        yield value
                        continue
                todo.append(shard_index)
            if span is not None:
                span.attrs.update(resumed_shards=done)
            self._resumed = done
            tasks = [(plan.space, index, plan.shards[index][0],
                      plan.shards[index][1], session.tech,
                      self.objectives, self.top_k, keep_going)
                     for index in todo]
            on_fault = _executor_fault_sink(session.sink)
            tap = (TraceTap.for_span(session.tracer, span)
                   if span is not None else None)
            for _, shard in parallel_imap(_shard_worker, tasks,
                                          jobs=session.jobs,
                                          pool=session.pool,
                                          on_fault=on_fault,
                                          trace=tap):
                done += 1
                if cache is not None:
                    cache.put(shard_checkpoint_key(
                        plan.fingerprint, keep_going, shard.shard),
                        shard)
                self._note_shard(shard, resumed=False)
                if progress is not None:
                    progress(done, plan.n_shards, shard)
                yield shard
            if span is not None:
                span.attrs.update(shards_done=done)

    def _note_shard(self, shard: ShardResult, resumed: bool) -> None:
        """Per-shard observability: span + counters + fault events."""
        session = self.session
        if session.tracer is not None:
            pspan = session.tracer.open(
                f"shard[{shard.start}:{shard.stop}]",
                kind="sweep_shard", shard=shard.shard,
                n_points=shard.n_points, n_priced=shard.n_priced,
                frontier=len(shard.frontier), resumed=resumed)
            session.tracer.close(pspan, ok=True)
        if session.metrics is not None:
            session.metrics.counter(
                "explore.scale.shards_done").inc()
            if resumed:
                session.metrics.counter(
                    "explore.scale.shards_resumed").inc()
            session.metrics.counter(
                "explore.sweep.points_evaluated").inc(shard.n_priced)
            session.metrics.counter(
                "explore.sweep.points_skipped").inc(
                    len(shard.failures))
        if not resumed:
            for failure in shard.failures:
                session.emit(FaultEvent(
                    domain="sweep", name=failure.label,
                    index=failure.index, error=failure.error,
                    recovered=True))

    def _run_sharded(self, plan: ScalePlan, keep_going: bool,
                     resume: bool,
                     progress: Optional[ProgressCallback]
                     ) -> ScaleResult:
        watch = Stopwatch()
        collected: Dict[int, ShardResult] = {}
        for shard in self._sharded_stream(plan, keep_going, resume,
                                          progress):
            collected[shard.shard] = shard
        return self._merge(plan, collected, watch.elapsed())

    def _merge(self, plan: ScalePlan,
               collected: Dict[int, ShardResult],
               wall_clock_s: float) -> ScaleResult:
        """Fold shard survivors into the global frontier/top-K."""
        frontier_acc = ParetoAccumulator()
        top_acc = TopKAccumulator(self.top_k)
        failures: List[ScaleFailure] = []
        n_priced = 0
        for shard_index in sorted(collected):
            shard = collected[shard_index]
            n_priced += shard.n_priced
            for key, item, vec in shard.frontier:
                frontier_acc.add(key, item, vec)
            for score, key, item in shard.top:
                top_acc.add(key, item, score)
            failures.extend(shard.failures)
        failures.sort(key=lambda f: f.index)
        if not n_priced:
            if failures:
                raise ExplorationError(
                    f"every sweep point failed "
                    f"({len(failures)} failures; first: "
                    f"{failures[0].error})")
            raise ExplorationError("sweep produced no points")
        return ScaleResult(
            mode="sharded", objectives=self.objectives,
            n_points=plan.n_points, n_priced=n_priced,
            shards_total=plan.n_shards, shards_done=len(collected),
            resumed_shards=getattr(self, "_resumed", 0),
            frontier=frontier_acc.front(),
            top=[(score, item)
                 for score, _, item in top_acc.entries()],
            failures=failures, wall_clock_s=wall_clock_s)

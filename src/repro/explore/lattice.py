"""The sweep parameter lattice: lazy, sliceable, array-shaped.

A million-point design-space sweep cannot afford to materialize its
point list up front — the lattice here stays *implicit*: a
:class:`SweepSpace` declares the axis options (total words, bits, brick
words, memory types), a :class:`Lattice` lays them out as contiguous
*blocks* (one per ``(memory_type, bits, brick_words)`` combination,
holding the total-words values that pass the divisibility filter), and
shards address points by global index range.  A shard materializes only
its own slice — as :class:`LatticePoint` tuples for bookkeeping, or
directly as numpy columns feeding
:func:`repro.bricks.batch.estimate_metric_columns` without ever
constructing per-point Python objects.

For a single memory type the enumeration order is exactly the legacy
``plan_sweep`` grid order (bits -> brick_words -> total_words), so the
engine's small-sweep path reproduces historical results byte for byte.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np

from ..cells.bitcells import MEMORY_TYPES
from ..errors import ExplorationError


@dataclass(frozen=True)
class SweepSpace:
    """The declarative axes of one design-space sweep.

    Hashable and picklable: workers rebuild their :class:`Lattice` from
    the space (cheap — block layout is ``O(axes)``, not ``O(points)``),
    and the plan fingerprint covers it.
    """

    total_words_options: Tuple[int, ...] = (128,)
    bits_options: Tuple[int, ...] = (8, 16, 32)
    brick_words_options: Tuple[int, ...] = (16, 32, 64)
    memory_types: Tuple[str, ...] = ("8T",)

    def __post_init__(self) -> None:
        for name in ("total_words_options", "bits_options",
                     "brick_words_options", "memory_types"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            if not getattr(self, name):
                raise ExplorationError(f"sweep space needs at least one "
                                       f"value for {name}")
        for mt in self.memory_types:
            if mt not in MEMORY_TYPES:
                raise ExplorationError(
                    f"unknown memory type {mt!r}; "
                    f"known: {MEMORY_TYPES}")
        for name in ("total_words_options", "bits_options",
                     "brick_words_options"):
            for value in getattr(self, name):
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 1:
                    raise ExplorationError(
                        f"{name} must be positive integers, "
                        f"got {value!r}")

    @classmethod
    def from_options(cls, total_words_options: Sequence[int] = (128,),
                     bits_options: Sequence[int] = (8, 16, 32),
                     brick_words_options: Sequence[int] = (16, 32, 64),
                     memory_type: str = "8T",
                     memory_types: Sequence[str] = ()) -> "SweepSpace":
        """Build a space from the legacy ``plan_sweep`` keyword shape.

        ``memory_types`` (plural) wins over the scalar ``memory_type``
        when given — the multi-type lattice the scaled engine explores.
        """
        types = tuple(memory_types) if memory_types else (memory_type,)
        return cls(total_words_options=tuple(total_words_options),
                   bits_options=tuple(bits_options),
                   brick_words_options=tuple(brick_words_options),
                   memory_types=types)


class LatticePoint(NamedTuple):
    """One addressed point of the lattice (global ``index`` included)."""

    index: int
    memory_type: str
    total_words: int
    bits: int
    brick_words: int
    stack: int

    @property
    def label(self) -> str:
        return (f"{self.total_words}x{self.bits}b from "
                f"{self.brick_words}x{self.bits}b bricks "
                f"({self.stack}x)")


@dataclass(frozen=True)
class _Block:
    """One contiguous run of points sharing (type, bits, brick_words)."""

    start: int
    memory_type: str
    bits: int
    brick_words: int
    total_words: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.total_words)


class Lattice:
    """Indexed view over a :class:`SweepSpace`'s valid points.

    Points are ordered memory_type -> bits -> brick_words ->
    total_words, with combinations failing the paper's divisibility
    constraint (``total_words % brick_words == 0``) skipped.  Blocks
    make global indexing O(log blocks) and slicing O(slice).
    """

    def __init__(self, space: SweepSpace) -> None:
        self.space = space
        # total_words surviving the divisibility filter, per brick size.
        valid_tw: Dict[int, Tuple[int, ...]] = {}
        for bw in space.brick_words_options:
            valid_tw[bw] = tuple(tw for tw in space.total_words_options
                                 if tw % bw == 0)
        blocks: List[_Block] = []
        start = 0
        for memory_type in space.memory_types:
            for bits in space.bits_options:
                for bw in space.brick_words_options:
                    tws = valid_tw[bw]
                    if not tws:
                        continue
                    blocks.append(_Block(start, memory_type, bits, bw,
                                         tws))
                    start += len(tws)
        self._blocks = blocks
        self._starts = [block.start for block in blocks]
        self._n = start

    def __len__(self) -> int:
        return self._n

    def _locate(self, index: int) -> Tuple[_Block, int]:
        if not 0 <= index < self._n:
            raise ExplorationError(
                f"lattice index {index} out of range [0, {self._n})")
        pos = bisect_right(self._starts, index) - 1
        block = self._blocks[pos]
        return block, index - block.start

    def point(self, index: int) -> LatticePoint:
        """Materialize one point by global index."""
        block, offset = self._locate(index)
        tw = block.total_words[offset]
        return LatticePoint(index=index, memory_type=block.memory_type,
                            total_words=tw, bits=block.bits,
                            brick_words=block.brick_words,
                            stack=tw // block.brick_words)

    def _block_runs(self, start: int,
                    stop: int) -> Iterator[Tuple[_Block, int, int]]:
        """Yield ``(block, lo, hi)`` runs covering ``[start, stop)``."""
        if start < 0 or stop > self._n or start > stop:
            raise ExplorationError(
                f"lattice slice [{start}, {stop}) out of range "
                f"[0, {self._n})")
        index = start
        while index < stop:
            block, offset = self._locate(index)
            take = min(stop - index, len(block) - offset)
            yield block, offset, offset + take
            index += take

    def points(self, start: int, stop: int) -> List[LatticePoint]:
        """Materialize the points of ``[start, stop)``, in order."""
        out: List[LatticePoint] = []
        for block, lo, hi in self._block_runs(start, stop):
            bw = block.brick_words
            for offset in range(lo, hi):
                tw = block.total_words[offset]
                out.append(LatticePoint(
                    index=block.start + offset,
                    memory_type=block.memory_type,
                    total_words=tw, bits=block.bits, brick_words=bw,
                    stack=tw // bw))
        return out

    def columns(self, start: int, stop: int) -> Dict[str, np.ndarray]:
        """The slice as struct-of-arrays columns (no Python objects).

        Returns ``memory_code`` (index into
        :data:`repro.cells.bitcells.MEMORY_TYPES`), ``words`` (brick
        words), ``bits``, ``total_words`` and ``stack`` — the exact
        shape :class:`repro.bricks.batch.BrickSpecBatch` consumes.
        """
        codes: List[np.ndarray] = []
        words: List[np.ndarray] = []
        bits: List[np.ndarray] = []
        totals: List[np.ndarray] = []
        for block, lo, hi in self._block_runs(start, stop):
            n = hi - lo
            tw = np.asarray(block.total_words[lo:hi], dtype=np.int64)
            codes.append(np.full(
                n, MEMORY_TYPES.index(block.memory_type),
                dtype=np.int8))
            words.append(np.full(n, block.brick_words, dtype=np.int64))
            bits.append(np.full(n, block.bits, dtype=np.int64))
            totals.append(tw)
        if not codes:
            empty = np.zeros(0, dtype=np.int64)
            return {"memory_code": np.zeros(0, dtype=np.int8),
                    "words": empty, "bits": empty,
                    "total_words": empty, "stack": empty}
        memory_code = np.concatenate(codes)
        words_col = np.concatenate(words)
        totals_col = np.concatenate(totals)
        return {"memory_code": memory_code,
                "words": words_col,
                "bits": np.concatenate(bits),
                "total_words": totals_col,
                "stack": totals_col // words_col}

    def contains(self, memory_type: str, total_words: int, bits: int,
                 brick_words: int) -> bool:
        """Whether a combination is already on the lattice (used by the
        refinement pass to offer only genuinely new candidates)."""
        space = self.space
        return (memory_type in space.memory_types
                and bits in space.bits_options
                and brick_words in space.brick_words_options
                and total_words in space.total_words_options
                and total_words % brick_words == 0)

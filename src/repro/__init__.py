"""Reproduction of *A Synthesis Methodology for Application-Specific
Logic-in-Memory Designs* (Sumbul, Vaidyanathan, Zhu, Franchetti, Pileggi
— DAC 2015).

The package implements the paper's full stack in pure Python:

``repro.tech``
    Parametric technology models, PVT corners and the restrictive-
    patterning (pattern-construct) checker behind Fig. 1.
``repro.circuit``
    Logical effort, Elmore/RC engines, the gate catalog and a
    switch-level transient simulator — the "SPICE" reference of Table 1.
``repro.cells``
    Bitcells (6T/8T/CAM/eDRAM/dual-port), the brick leaf cells, and a
    characterized standard-cell library.
``repro.liberty``
    NLDM lookup tables, cell/library models and a Liberty (.lib) writer.
``repro.bricks``
    The paper's core contribution: the memory-brick compiler, layout
    generator, RC extractor, closed-form performance estimator and
    dynamic library generation (Table 1, Fig. 4c).
``repro.rtl``
    A structural RTL layer (modules, generators, smart-memory builders),
    an event-driven logic simulator, and a Verilog emitter (Fig. 3).
``repro.synth``
    Physical synthesis: floorplan, placement, routing estimation, STA
    and activity-based power — the conventional flow bricks plug into.
``repro.explore``
    Design-space exploration, pareto fronts, and parameterized design
    generation (Fig. 4c plus the Section 6 future-work optimizer).
``repro.silicon``
    Process-variation "silicon" emulation of the Fig. 4a test chip.
``repro.spgemm``
    The application: sparse matrices, the CAM-based LiM SpGEMM
    accelerator and the heap/FIFO baseline, with calibrated chip energy
    models (Fig. 5, Fig. 6).
``repro.perf``
    Content-addressed characterization caching and parallel fan-out —
    the machinery behind the paper's "within 2 seconds" usability claim
    at scale.
``repro.session``
    The run context (:class:`~repro.session.Session`): technology,
    characterization cache, executor width, master seed and the stage
    event sink, constructed once per entry point and passed down
    through every layer.
``repro.faults``
    Defect injection, yield/repair analysis and the SEC-DED overhead
    accounting — the manufacturability side of the brick argument.

Quick start::

    from repro.tech import cmos65
    from repro.bricks import sram_brick, compile_brick, estimate_brick

    tech = cmos65()
    brick = compile_brick(sram_brick(16, 10), tech, target_stack=1)
    print(estimate_brick(brick, tech).read_delay)   # ~247 ps
"""

from . import (
    bricks,
    cells,
    circuit,
    explore,
    faults,
    liberty,
    perf,
    rtl,
    session,
    silicon,
    smartmem,
    spgemm,
    synth,
    tech,
)
from .errors import ReproError
from .session import FaultEvent, RecordingSink, Session, StageEvent

__version__ = "1.0.0"

__all__ = [
    "bricks", "cells", "circuit", "explore", "faults", "liberty",
    "perf", "rtl", "session", "silicon", "smartmem", "spgemm", "synth",
    "tech",
    "ReproError", "FaultEvent", "RecordingSink", "Session", "StageEvent",
    "__version__",
]

"""Liberty (.lib) text emitter.

The paper's bricks enter commercial tools "by library files at the gate
netlist (.lib that includes timing, power, and area)".  Our flow consumes
:class:`~repro.liberty.models.LibraryModel` objects directly, but this
writer emits the industry exchange format so generated brick libraries can
be inspected, diffed and (in principle) fed to external tools.

The emitted subset is standard NLDM Liberty: ``lu_table_template``,
``cell``/``pin``/``timing`` groups with ``cell_rise``/``cell_fall`` and
transition tables, ``internal_power`` groups for the per-op energies, and
brick metadata as cell-level attributes.
"""

from __future__ import annotations

from typing import List

from ..units import FF, NS, UM
from .lut import LUT2D
from .models import CLOCK, OUTPUT, CellModel, LibraryModel

_INDENT = "  "


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _axis(values) -> str:
    return ", ".join(_fmt(v) for v in values)


class LibertyWriter:
    """Serializes a :class:`LibraryModel` to Liberty text.

    Units follow common 65 nm practice: time in ns, capacitance in fF
    (recorded in the library header), energy in fJ, area in um^2.
    """

    def __init__(self, library: LibraryModel):
        self.library = library
        self._lines: List[str] = []
        self._depth = 0

    # --- low-level emission --------------------------------------------------

    def _emit(self, text: str) -> None:
        self._lines.append(_INDENT * self._depth + text)

    def _open(self, text: str) -> None:
        self._emit(text + " {")
        self._depth += 1

    def _close(self) -> None:
        self._depth -= 1
        self._emit("}")

    # --- group writers ---------------------------------------------------------

    def _write_lut(self, group: str, lut: LUT2D) -> None:
        self._open(f"{group} (lut_{len(lut.slews)}x{len(lut.loads)})")
        self._emit(f'index_1 ("{_axis(s / NS for s in lut.slews)}");')
        self._emit(f'index_2 ("{_axis(c / FF for c in lut.loads)}");')
        rows = ", \\\n".join(
            _INDENT * (self._depth + 1) + f'"{_axis(v / NS for v in row)}"'
            for row in lut.values)
        self._emit("values ( \\")
        self._lines.append(rows + ");")
        self._close()

    def _write_energy(self, op: str, lut: LUT2D) -> None:
        self._open(f'internal_power ()')
        self._emit(f'when : "{op}";')
        # Energy tables are emitted in fJ against the same axes.
        self._open("rise_power (energy)")
        self._emit(f'index_1 ("{_axis(s / NS for s in lut.slews)}");')
        self._emit(f'index_2 ("{_axis(c / FF for c in lut.loads)}");')
        rows = ", \\\n".join(
            _INDENT * (self._depth + 1)
            + f'"{_axis(v / 1e-15 for v in row)}"'
            for row in lut.values)
        self._emit("values ( \\")
        self._lines.append(rows + ");")
        self._close()
        self._close()

    def _write_pin(self, cell: CellModel, pin_name: str) -> None:
        pin = cell.pins[pin_name]
        self._open(f"pin ({pin.name})")
        if pin.direction == OUTPUT:
            self._emit("direction : output;")
            for arc in cell.arcs_to(pin.name):
                self._open("timing ()")
                self._emit(f'related_pin : "{arc.from_pin}";')
                self._write_lut("cell_rise", arc.delay)
                self._write_lut("cell_fall", arc.delay)
                self._write_lut("rise_transition", arc.out_slew)
                self._write_lut("fall_transition", arc.out_slew)
                self._close()
        else:
            self._emit("direction : input;")
            self._emit(f"capacitance : {_fmt(pin.cap / FF)};")
            if pin.direction == CLOCK:
                self._emit("clock : true;")
        self._close()

    def _write_cell(self, cell: CellModel) -> None:
        self._open(f"cell ({cell.name})")
        self._emit(f"area : {_fmt(cell.area / (UM * UM))};")
        self._emit(f"cell_leakage_power : {_fmt(cell.leakage / 1e-9)};")
        if cell.sequential:
            self._open(f'ff (IQ, IQN)')
            self._emit(f'clocked_on : "{cell.clock_pin}";')
            self._close()
        for key, value in sorted(cell.attrs.items()):
            self._emit(f'/* {key} : {value} */')
        for pin_name in sorted(cell.pins):
            self._write_pin(cell, pin_name)
        for op in sorted(cell.energy):
            self._write_energy(op, cell.energy[op])
        self._close()

    def text(self) -> str:
        """Render the whole library."""
        self._lines = []
        self._depth = 0
        self._open(f"library ({self.library.name})")
        self._emit('delay_model : "table_lookup";')
        self._emit('time_unit : "1ns";')
        self._emit('capacitive_load_unit (1, ff);')
        self._emit('leakage_power_unit : "1nW";')
        self._emit(f'/* technology : {self.library.tech_name} */')
        for name in sorted(self.library.cells):
            self._write_cell(self.library.cells[name])
        self._close()
        return "\n".join(self._lines) + "\n"


def write_liberty(library: LibraryModel, path: str) -> None:
    """Write ``library`` to ``path`` in Liberty format."""
    text = LibertyWriter(library).text()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)

"""Timing/power library models (the role of .lib files in the paper's flow).

"Bricks are integrated ... by library files at the gate netlist (.lib that
includes timing, power, and area)" — this module defines those library
objects.  Standard cells and memory bricks are both :class:`CellModel`
instances, which is the formal expression of the paper's central idea: once
memory bricks live at the same abstraction level as standard cells, every
downstream tool (mapper, placer, STA, power) handles them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import LibraryError
from .lut import LUT2D

INPUT = "input"
OUTPUT = "output"
CLOCK = "clock"


@dataclass(frozen=True)
class PinModel:
    """One pin of a cell: direction and input capacitance."""

    name: str
    direction: str
    cap: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in (INPUT, OUTPUT, CLOCK):
            raise LibraryError(
                f"pin {self.name!r} has bad direction {self.direction!r}")
        if self.cap < 0:
            raise LibraryError(f"pin {self.name!r} has negative cap")


@dataclass(frozen=True)
class TimingArc:
    """A delay arc from an input (or clock) pin to an output pin."""

    from_pin: str
    to_pin: str
    delay: LUT2D
    out_slew: LUT2D

    def delay_value(self, slew_in: float, load: float) -> float:
        return self.delay.value(slew_in, load)

    def slew_value(self, slew_in: float, load: float) -> float:
        return self.out_slew.value(slew_in, load)


@dataclass
class CellModel:
    """A library cell: standard cell or memory brick macro.

    ``energy`` maps operation names to per-operation energy LUTs
    (slew x load).  Standard cells use the single op ``"switch"``; bricks
    use ``"read"``, ``"write"`` and (for CAM bricks) ``"match"``; flops use
    ``"clock"`` and ``"switch"``.

    ``attrs`` carries open metadata; brick models store ``words``,
    ``bits``, ``stack`` and ``memory_type`` there so that reports and the
    design-space explorer can reason about storage without downcasting.
    """

    name: str
    area: float  # um^2
    pins: Dict[str, PinModel]
    arcs: List[TimingArc] = field(default_factory=list)
    energy: Dict[str, LUT2D] = field(default_factory=dict)
    leakage: float = 0.0  # watts
    gate_name: Optional[str] = None  # link into circuit.gates.CATALOG
    sequential: bool = False
    setup: float = 0.0
    hold: float = 0.0
    clock_pin: Optional[str] = None
    #: Hard lower bound on the clock period this cell allows (seconds).
    #: Precharged bricks need their evaluate phase (half the period) to
    #: cover the read path, so their min_period is twice the critical
    #: path.  Zero means unconstrained.
    min_period: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.area < 0:
            raise LibraryError(f"cell {self.name!r} has negative area")
        for arc in self.arcs:
            if arc.from_pin not in self.pins:
                raise LibraryError(
                    f"cell {self.name!r}: arc from unknown pin "
                    f"{arc.from_pin!r}")
            if arc.to_pin not in self.pins:
                raise LibraryError(
                    f"cell {self.name!r}: arc to unknown pin "
                    f"{arc.to_pin!r}")
        if self.sequential and self.clock_pin is None:
            raise LibraryError(
                f"sequential cell {self.name!r} needs a clock pin")

    # --- pin queries -------------------------------------------------------

    def input_pins(self) -> List[str]:
        return [p.name for p in self.pins.values()
                if p.direction in (INPUT, CLOCK)]

    def output_pins(self) -> List[str]:
        return [p.name for p in self.pins.values() if p.direction == OUTPUT]

    def pin_cap(self, pin: str) -> float:
        try:
            return self.pins[pin].cap
        except KeyError as exc:
            raise LibraryError(
                f"cell {self.name!r} has no pin {pin!r}") from exc

    def arcs_to(self, out_pin: str) -> List[TimingArc]:
        return [a for a in self.arcs if a.to_pin == out_pin]

    def arc(self, from_pin: str, to_pin: str) -> TimingArc:
        for candidate in self.arcs:
            if candidate.from_pin == from_pin and candidate.to_pin == to_pin:
                return candidate
        raise LibraryError(
            f"cell {self.name!r} has no arc {from_pin!r} -> {to_pin!r}")

    def energy_of(self, op: str, slew: float = 0.0,
                  load: float = 0.0) -> float:
        try:
            return self.energy[op].value(slew, load)
        except KeyError as exc:
            raise LibraryError(
                f"cell {self.name!r} has no energy model for op {op!r}; "
                f"known: {sorted(self.energy)}") from exc

    @property
    def is_brick(self) -> bool:
        return "memory_type" in self.attrs


@dataclass
class LibraryModel:
    """A named collection of cell models characterized for one technology."""

    name: str
    tech_name: str
    cells: Dict[str, CellModel] = field(default_factory=dict)

    def add(self, cell: CellModel) -> None:
        if cell.name in self.cells:
            raise LibraryError(f"duplicate cell {cell.name!r} in library")
        self.cells[cell.name] = cell

    def cell(self, name: str) -> CellModel:
        try:
            return self.cells[name]
        except KeyError as exc:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}") from exc

    def merged_with(self, other: "LibraryModel") -> "LibraryModel":
        """Union of two libraries (std cells + generated bricks)."""
        merged = LibraryModel(
            name=f"{self.name}+{other.name}", tech_name=self.tech_name)
        for cell in self.cells.values():
            merged.add(cell)
        for cell in other.cells.values():
            merged.add(cell)
        return merged

    def bricks(self) -> List[CellModel]:
        return [c for c in self.cells.values() if c.is_brick]

    def __iter__(self) -> Iterable[CellModel]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

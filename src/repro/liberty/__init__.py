"""Library modeling: NLDM LUTs, cell/library models, Liberty emitter."""

from .lut import LUT2D, default_load_axis, default_slew_axis
from .models import (
    CLOCK,
    INPUT,
    OUTPUT,
    CellModel,
    LibraryModel,
    PinModel,
    TimingArc,
)
from .parser import parse_library, parse_liberty_text, read_liberty
from .writer import LibertyWriter, write_liberty

__all__ = [
    "LUT2D", "default_load_axis", "default_slew_axis",
    "CLOCK", "INPUT", "OUTPUT", "CellModel", "LibraryModel", "PinModel",
    "TimingArc", "LibertyWriter", "write_liberty",
    "parse_library", "parse_liberty_text", "read_liberty",
]

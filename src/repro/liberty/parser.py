"""Liberty (.lib) parser.

The inverse of :mod:`repro.liberty.writer`: reads the NLDM subset this
package emits back into :class:`~repro.liberty.models.LibraryModel`
objects, so generated brick libraries survive a round trip through the
industry exchange format (and externally authored libraries in the same
subset can be imported).

The grammar handled is the standard Liberty block structure::

    group_name (args) { attribute : value; ... nested groups ... }

with complex attributes (``index_1 ("...")``, ``values ("...", "...")``)
and the unit conventions the writer records (time in ns, capacitance in
fF, energy in fJ, leakage in nW, area in um^2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import LibraryError
from ..units import FF, NS
from .lut import LUT2D
from .models import CLOCK, INPUT, OUTPUT, CellModel, LibraryModel, \
    PinModel, TimingArc


@dataclass
class LibertyGroup:
    """One parsed ``name (args) { ... }`` block."""

    name: str
    args: str
    attributes: Dict[str, str] = field(default_factory=dict)
    complex_attributes: Dict[str, List[str]] = field(
        default_factory=dict)
    children: List["LibertyGroup"] = field(default_factory=list)
    comments: List[str] = field(default_factory=list)

    def child(self, name: str) -> Optional["LibertyGroup"]:
        for group in self.children:
            if group.name == name:
                return group
        return None

    def children_named(self, name: str) -> List["LibertyGroup"]:
        return [g for g in self.children if g.name == name]


class _Tokenizer:
    """Liberty-aware scanner: strips comments, yields structural
    tokens."""

    def __init__(self, text: str):
        self.comments: List[str] = []
        # Collect /* ... */ comments (the writer stores brick metadata
        # there), then strip them and line continuations.
        for match in re.finditer(r"/\*(.*?)\*/", text, re.S):
            self.comments.append(match.group(1).strip())
        text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
        text = text.replace("\\\n", " ")
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and \
                self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self) -> str:
        self._skip_ws()
        char = self.text[self.pos]
        self.pos += 1
        return char

    def until(self, stops: str) -> str:
        """Consume text up to (not including) any stop character,
        respecting quoted strings."""
        self._skip_ws()
        out = []
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == '"':
                end = self.text.index('"', self.pos + 1)
                out.append(self.text[self.pos:end + 1])
                self.pos = end + 1
                continue
            if char in stops:
                break
            out.append(char)
            self.pos += 1
        return "".join(out).strip()


def _parse_group(tok: _Tokenizer) -> LibertyGroup:
    header = tok.until("({;}")
    if tok.peek() != "(":
        raise LibraryError(
            f"expected '(' after group name {header!r}")
    tok.take()
    args = tok.until(")")
    tok.take()  # ')'
    group = LibertyGroup(name=header.strip(), args=args.strip())
    if tok.peek() != "{":
        raise LibraryError(f"expected '{{' for group {header!r}")
    tok.take()
    while True:
        char = tok.peek()
        if char == "":
            raise LibraryError(
                f"unterminated group {group.name!r}")
        if char == "}":
            tok.take()
            return group
        item = tok.until(":({;}")
        nxt = tok.peek()
        if nxt == ":":
            tok.take()
            value = tok.until(";")
            tok.take()
            group.attributes[item.strip()] = value.strip().strip('"')
        elif nxt == "(":
            # Either a nested group or a complex attribute; decide by
            # whether a '{' follows the closing paren.
            tok.take()
            inner = tok.until(")")
            tok.take()
            after = tok.peek()
            if after == "{":
                tok.take()
                child = LibertyGroup(name=item.strip(),
                                     args=inner.strip())
                _parse_group_body(tok, child)
                group.children.append(child)
            else:
                if after == ";":
                    tok.take()
                values = [piece.strip().strip('"')
                          for piece in inner.split('",')]
                group.complex_attributes[item.strip()] = [
                    v.strip().strip('"') for v in values]
        elif nxt == ";":
            tok.take()  # stray semicolon
        else:
            raise LibraryError(
                f"unexpected character {nxt!r} in group "
                f"{group.name!r}")


def _parse_group_body(tok: _Tokenizer, group: LibertyGroup) -> None:
    while True:
        char = tok.peek()
        if char == "":
            raise LibraryError(f"unterminated group {group.name!r}")
        if char == "}":
            tok.take()
            return
        item = tok.until(":({;}")
        nxt = tok.peek()
        if nxt == ":":
            tok.take()
            value = tok.until(";")
            tok.take()
            group.attributes[item.strip()] = value.strip().strip('"')
        elif nxt == "(":
            tok.take()
            inner = tok.until(")")
            tok.take()
            after = tok.peek()
            if after == "{":
                tok.take()
                child = LibertyGroup(name=item.strip(),
                                     args=inner.strip())
                _parse_group_body(tok, child)
                group.children.append(child)
            else:
                if after == ";":
                    tok.take()
                group.complex_attributes[item.strip()] = [
                    v.strip().strip('"') for v in inner.split('",')]
        elif nxt == ";":
            tok.take()
        else:
            raise LibraryError(
                f"unexpected character {nxt!r} in group "
                f"{group.name!r}")


def parse_liberty_text(text: str) -> LibertyGroup:
    """Parse Liberty text into its root ``library`` group."""
    tok = _Tokenizer(text)
    root = _parse_group(tok)
    if root.name != "library":
        raise LibraryError(
            f"top-level group must be 'library', got {root.name!r}")
    root.comments = tok.comments
    return root


def _axis(values: List[str], scale: float) -> Tuple[float, ...]:
    numbers = []
    for chunk in values:
        numbers.extend(float(x) for x in chunk.split(",") if x.strip())
    return tuple(n * scale for n in numbers)


def _lut_from_group(group: LibertyGroup,
                    value_scale: float) -> LUT2D:
    slews = _axis(group.complex_attributes.get("index_1", ["0"]), NS)
    loads = _axis(group.complex_attributes.get("index_2", ["0"]), FF)
    raw = group.complex_attributes.get("values", [])
    rows = []
    for chunk in raw:
        for line in chunk.split('",'):
            cleaned = line.strip().strip('"').rstrip(",")
            if cleaned:
                rows.append(tuple(float(x) * value_scale
                                  for x in cleaned.split(",")))
    if len(rows) != len(slews):
        # The writer packs one quoted row per slew; tolerate flattening.
        flat = [v for row in rows for v in row]
        if len(flat) == len(slews) * len(loads):
            rows = [tuple(flat[i * len(loads):(i + 1) * len(loads)])
                    for i in range(len(slews))]
        else:
            raise LibraryError("LUT values do not match axes")
    return LUT2D(slews, loads, tuple(rows))


def _cell_from_group(group: LibertyGroup) -> CellModel:
    name = group.args
    area = float(group.attributes.get("area", "0"))
    leakage = float(group.attributes.get("cell_leakage_power", "0")) \
        * 1e-9
    sequential = group.child("ff") is not None
    clock_pin = None
    pins: Dict[str, PinModel] = {}
    arcs: List[TimingArc] = []
    for pin_group in group.children_named("pin"):
        pin_name = pin_group.args
        direction = pin_group.attributes.get("direction", "input")
        cap = float(pin_group.attributes.get("capacitance", "0")) * FF
        is_clock = pin_group.attributes.get("clock") == "true"
        if is_clock:
            clock_pin = pin_name
        model_dir = OUTPUT if direction == "output" else \
            (CLOCK if is_clock else INPUT)
        pins[pin_name] = PinModel(pin_name, model_dir, cap=cap)
        for timing in pin_group.children_named("timing"):
            related = timing.attributes.get("related_pin", "")
            rise = timing.child("cell_rise")
            transition = timing.child("rise_transition")
            if rise is None or transition is None:
                continue
            arcs.append(TimingArc(
                related, pin_name,
                _lut_from_group(rise, NS),
                _lut_from_group(transition, NS)))
    energy: Dict[str, LUT2D] = {}
    for power in group.children_named("internal_power"):
        op = power.attributes.get("when", "switch")
        table = power.child("rise_power")
        if table is not None:
            energy[op] = _lut_from_group(table, 1e-15)
    attrs: Dict[str, object] = {}
    for comment in group.comments:
        if ":" in comment:
            key, _, value = comment.partition(":")
            attrs[key.strip()] = value.strip()
    if sequential and clock_pin is None:
        # The writer records the clock on the pin; fall back to the ff
        # group's clocked_on attribute.
        ff = group.child("ff")
        clocked_on = ff.attributes.get("clocked_on", "") if ff else ""
        clock_pin = clocked_on.strip('"') or None
        if clock_pin is None:
            sequential = False
    return CellModel(
        name=name,
        area=area,
        pins=pins,
        arcs=arcs,
        energy=energy,
        leakage=leakage,
        sequential=sequential,
        clock_pin=clock_pin,
        attrs=attrs,
    )


def parse_library(text: str) -> LibraryModel:
    """Parse Liberty text into a :class:`LibraryModel`.

    Covers the subset :class:`~repro.liberty.writer.LibertyWriter`
    emits; unknown constructs in that subset raise
    :class:`~repro.errors.LibraryError`, unknown *extra* attributes are
    ignored (Liberty is wildly extensible).
    """
    root = parse_liberty_text(text)
    tech_name = "unknown"
    for comment in root.comments:
        if comment.startswith("technology"):
            tech_name = comment.partition(":")[2].strip()
    library = LibraryModel(name=root.args, tech_name=tech_name)
    # Attach comments to cells by order: the writer emits metadata
    # comments inside each cell group, but the tokenizer hoists them;
    # match them back by cell-name adjacency is fragile, so brick
    # metadata round-trips only as library-level comments.
    for cell_group in root.children_named("cell"):
        library.add(_cell_from_group(cell_group))
    return library


def read_liberty(path: str) -> LibraryModel:
    """Read a Liberty file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_library(handle.read())

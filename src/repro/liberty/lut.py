"""NLDM-style lookup tables with bilinear interpolation and curve fitting.

Section 3 of the paper: "The gate components within the brick netlist are
each represented by look-up table (LUT) models based on bilinear
interpolation and curve fitting for delay and energy as a function of
fanout and slew rate."  This module is that representation, shared by the
standard-cell library, the dynamically generated brick libraries and the
static timing engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from ..errors import LibraryError


@dataclass(frozen=True)
class LUT2D:
    """A 2-D table indexed by (input slew, output load).

    Lookups bilinearly interpolate inside the grid and clamp-extrapolate
    linearly outside it (the behaviour commercial STA tools default to).
    """

    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    values: Tuple[Tuple[float, ...], ...]  # values[i][j] at slews[i], loads[j]

    def __post_init__(self) -> None:
        if len(self.slews) < 1 or len(self.loads) < 1:
            raise LibraryError("LUT axes must be non-empty")
        if list(self.slews) != sorted(self.slews) or \
                list(self.loads) != sorted(self.loads):
            raise LibraryError("LUT axes must be strictly increasing")
        if len(set(self.slews)) != len(self.slews) or \
                len(set(self.loads)) != len(self.loads):
            raise LibraryError("LUT axes must not contain duplicates")
        if len(self.values) != len(self.slews) or any(
                len(row) != len(self.loads) for row in self.values):
            raise LibraryError("LUT value grid does not match axes")

    @classmethod
    def from_function(cls, func: Callable[[float, float], float],
                      slews: Sequence[float],
                      loads: Sequence[float]) -> "LUT2D":
        """Characterize ``func(slew, load)`` on a grid."""
        values = tuple(
            tuple(float(func(s, ld)) for ld in loads) for s in slews)
        return cls(tuple(slews), tuple(loads), values)

    @classmethod
    def from_grid(cls, slews: Sequence[float], loads: Sequence[float],
                  values) -> "LUT2D":
        """Build from an already-computed ``len(slews) x len(loads)``
        value grid (nested sequences or a 2-D numpy array)."""
        grid = tuple(tuple(float(v) for v in row) for row in values)
        return cls(tuple(float(s) for s in slews),
                   tuple(float(ld) for ld in loads), grid)

    @classmethod
    def constant(cls, value: float) -> "LUT2D":
        """A degenerate single-point LUT (returns ``value`` everywhere)."""
        return cls((0.0,), (0.0,), ((float(value),),))

    def _axis_segment(self, axis: Tuple[float, ...], x: float
                      ) -> Tuple[int, float]:
        """Return (lower index, fraction) for interpolation along an axis."""
        n = len(axis)
        if n == 1:
            return 0, 0.0
        lo = int(np.searchsorted(axis, x, side="right")) - 1
        lo = min(max(lo, 0), n - 2)
        span = axis[lo + 1] - axis[lo]
        frac = (x - axis[lo]) / span
        return lo, frac  # frac < 0 or > 1 implements linear extrapolation

    def value(self, slew: float, load: float) -> float:
        """Bilinearly interpolated (or extrapolated) table value."""
        i, fi = self._axis_segment(self.slews, slew)
        j, fj = self._axis_segment(self.loads, load)
        v = self.values
        if len(self.slews) == 1 and len(self.loads) == 1:
            return v[0][0]
        if len(self.slews) == 1:
            return v[0][j] * (1 - fj) + v[0][j + 1] * fj
        if len(self.loads) == 1:
            return v[i][0] * (1 - fi) + v[i + 1][0] * fi
        v00, v01 = v[i][j], v[i][j + 1]
        v10, v11 = v[i + 1][j], v[i + 1][j + 1]
        top = v00 * (1 - fj) + v01 * fj
        bot = v10 * (1 - fj) + v11 * fj
        return top * (1 - fi) + bot * fi

    @staticmethod
    def _axis_segment_many(axis: Tuple[float, ...], x: "np.ndarray"
                           ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Vectorized :meth:`_axis_segment` over an array of queries."""
        n = len(axis)
        if n == 1:
            zero = np.zeros_like(x)
            return zero.astype(int), zero
        arr = np.asarray(axis)
        lo = np.searchsorted(arr, x, side="right") - 1
        lo = np.clip(lo, 0, n - 2)
        span = arr[lo + 1] - arr[lo]
        frac = (x - arr[lo]) / span
        return lo, frac  # out-of-range fracs extrapolate linearly

    def value_many(self, slews, loads) -> "np.ndarray":
        """Vectorized :meth:`value`: interpolate many points in one call.

        ``slews`` and ``loads`` are broadcast against each other (any
        mix of scalars and numpy arrays); the result has the broadcast
        shape.  Each element is bit-identical to the scalar
        :meth:`value` at the same point — both paths perform the same
        IEEE-double operations — which keeps STA and characterization
        sweeps free to batch lookups without changing results.
        """
        s, ld = np.broadcast_arrays(np.asarray(slews, dtype=float),
                                    np.asarray(loads, dtype=float))
        v = np.asarray(self.values)
        if len(self.slews) == 1 and len(self.loads) == 1:
            return np.full(s.shape, v[0, 0])
        j, fj = self._axis_segment_many(self.loads, ld)
        if len(self.slews) == 1:
            return v[0, j] * (1 - fj) + v[0, j + 1] * fj
        i, fi = self._axis_segment_many(self.slews, s)
        if len(self.loads) == 1:
            return v[i, 0] * (1 - fi) + v[i + 1, 0] * fi
        top = v[i, j] * (1 - fj) + v[i, j + 1] * fj
        bot = v[i + 1, j] * (1 - fj) + v[i + 1, j + 1] * fj
        return top * (1 - fi) + bot * fi

    def scaled(self, factor: float) -> "LUT2D":
        """Return a copy with all values multiplied by ``factor``."""
        values = tuple(tuple(x * factor for x in row) for row in self.values)
        return LUT2D(self.slews, self.loads, values)

    def max_value(self) -> float:
        return max(max(row) for row in self.values)

    def fit_plane(self) -> Tuple[float, float, float, float]:
        """Least-squares fit ``v ~ k0 + k1*slew + k2*load``.

        Returns ``(k0, k1, k2, max_abs_error)``.  This is the "curve
        fitting" compact-model companion of the LUT: sweeps that evaluate
        millions of points (the DSE of Fig 4c) use the plane; sign-off
        paths use the table.
        """
        pts = [(s, ld, v)
               for s, row in zip(self.slews, self.values)
               for ld, v in zip(self.loads, row)]
        a = np.array([[1.0, s, ld] for s, ld, _ in pts])
        b = np.array([v for _, _, v in pts])
        coef, *_ = np.linalg.lstsq(a, b, rcond=None)
        residual = np.abs(a @ coef - b)
        return float(coef[0]), float(coef[1]), float(coef[2]), \
            float(residual.max() if residual.size else 0.0)


def default_slew_axis(tech_tau: float) -> Tuple[float, ...]:
    """Standard 5-point slew axis scaled to the node's tau."""
    base = 5.0 * tech_tau
    return tuple(base * m for m in (0.2, 1.0, 3.0, 8.0, 20.0))


def default_load_axis(c_unit: float) -> Tuple[float, ...]:
    """Standard 6-point load axis in multiples of a unit input cap."""
    return tuple(c_unit * m for m in (0.25, 1.0, 2.0, 4.0, 8.0, 16.0))

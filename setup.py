"""Legacy setup shim.

The execution environment has no `wheel` package and no network access, so
PEP 517 editable installs (which require bdist_wheel) fail.  This shim lets
`pip install -e . --no-use-pep517 --no-build-isolation` perform a classic
develop install.  All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

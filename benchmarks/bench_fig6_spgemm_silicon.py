"""Fig. 6: silicon results — LiM CAM-SpGEMM vs non-LiM heap baseline.

The paper's headline: despite a 35 % slower clock (475 vs 725 MHz), the
LiM chip completes SpGEMM benchmarks 7x-250x faster and consumes
10x-310x less energy, because single-cycle CAM matching replaces the
FIFO-SRAM re-arrangement of the heap baseline.

We substitute the UF sparse-matrix collection with synthetic families
spanning the same structural regimes (see repro.spgemm.workloads) and
run both cycle-level chips on every workload.  Asserted shape:

* the LiM chip's clock is slower (the paper's 0.655 ratio),
* the LiM chip wins completion time on EVERY workload,
* the spread of speedups covers more than an order of magnitude, with
  the dense-column regime exceeding 50x at benchmark scale,
* energy ratios exceed latency ratios (the 96/72 mW power factor),
* measured average powers land on the paper's 72/96 mW anchors.
"""

import pytest

from bench_util import print_table
from repro.spgemm import (
    CAMSpGEMMAccelerator,
    HeapSpGEMMAccelerator,
    benchmark_suite,
)
from repro.units import MHZ, NJ, US

_SCALE = "small"


@pytest.fixture(scope="module")
def fig6():
    cam_chip = CAMSpGEMMAccelerator()
    heap_chip = HeapSpGEMMAccelerator()
    results = []
    for workload in benchmark_suite(_SCALE):
        cam = cam_chip.simulate(workload.a, workload.b)
        heap = heap_chip.simulate(workload.a, workload.b)
        results.append((workload, cam, heap))
    return results


def test_fig6_report(benchmark, fig6):
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    rows = []
    for workload, cam, heap in fig6:
        speedup = heap.completion_time_s / cam.completion_time_s
        energy_ratio = heap.energy_j / cam.energy_j
        rows.append((
            workload.name,
            workload.work,
            f"{cam.completion_time_s / US:.2f}",
            f"{heap.completion_time_s / US:.2f}",
            f"{speedup:.1f}x",
            f"{cam.energy_j / NJ:.2f}",
            f"{heap.energy_j / NJ:.2f}",
            f"{energy_ratio:.1f}x",
        ))
    print_table(
        f"Fig. 6 — LiM CAM chip (475 MHz) vs heap chip (725 MHz), "
        f"scale={_SCALE}",
        ("workload", "work", "lim[us]", "heap[us]", "speedup",
         "limE[nJ]", "heapE[nJ]", "energyX"),
        rows)


def test_fig6_lim_wins_everywhere_despite_slower_clock(benchmark,
                                                       fig6):
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    for workload, cam, heap in fig6:
        assert cam.freq_hz == pytest.approx(475 * MHZ)
        assert heap.freq_hz == pytest.approx(725 * MHZ)
        assert cam.completion_time_s < heap.completion_time_s, \
            workload.name
        assert cam.energy_j < heap.energy_j, workload.name


def test_fig6_speedup_spread(benchmark, fig6):
    """7x-250x in the paper; at benchmark scale the suite must span
    more than an order of magnitude with a >50x dense-column peak
    (the full 250x appears at scale='medium' — see EXPERIMENTS.md)."""
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    speedups = {w.name: heap.completion_time_s / cam.completion_time_s
                for w, cam, heap in fig6}
    assert max(speedups.values()) / min(speedups.values()) > 10.0
    assert max(speedups.values()) > 50.0
    assert speedups["hub_dense"] == max(speedups.values())
    assert min(speedups.values()) > 2.0


def test_fig6_energy_ratio_exceeds_latency_ratio(benchmark, fig6):
    """10x-310x energy vs 7x-250x latency: E = P x T with the heap
    chip's higher per-clock power."""
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    for workload, cam, heap in fig6:
        latency_ratio = heap.completion_time_s / cam.completion_time_s
        energy_ratio = heap.energy_j / cam.energy_j
        assert energy_ratio > latency_ratio, workload.name
        assert energy_ratio < latency_ratio * 1.6, workload.name


def test_fig6_power_anchors(benchmark, fig6):
    """Section 5: 72 mW and 96 mW per clock at max frequency."""
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    for workload, cam, heap in fig6:
        assert cam.average_power_w == pytest.approx(72e-3, rel=0.2)
        assert heap.average_power_w == pytest.approx(96e-3, rel=0.2)


def test_fig6_mechanism_speedup_model(benchmark, fig6):
    """Extension: the analytical model (speedup ~ 2 x work-weighted
    result-column fill x clock ratio) must explain the measured spread
    — the mechanism behind Fig. 6, not just its numbers."""
    from repro.spgemm import analyze_workload
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    rows = []
    for workload, cam, heap in fig6:
        stats = analyze_workload(workload.a, workload.b)
        predicted = stats.predicted_speedup()
        measured = heap.completion_time_s / cam.completion_time_s
        rows.append((workload.name, f"{stats.work_weighted_fill:.1f}",
                     f"{predicted:.1f}x", f"{measured:.1f}x"))
        assert predicted / 4.0 < measured < predicted * 4.0, \
            workload.name
    print_table(
        "Fig. 6 mechanism — column fill predicts the speedup",
        ("workload", "wfill", "predicted", "measured"), rows)


def test_benchmark_cam_chip_simulation(benchmark):
    suite = benchmark_suite("tiny")
    workload = suite[1]  # er_medium
    chip = CAMSpGEMMAccelerator()
    run = benchmark(lambda: chip.simulate(workload.a, workload.b,
                                          verify=False))
    assert run.cycles > 0

"""Benchmark: characterization-as-a-service vs the batch CLI.

The server exists to amortize what the batch CLI pays on every
invocation — interpreter start, imports, cache open, executor spin-up
and the characterization itself.  This benchmark prices both paths for
the paper's Fig. 4c sweep:

* **cold CLI** — ``python -m repro --no-cache sweep`` in a fresh
  subprocess, the historical one-shot cost;
* **warm served** — the same sweep requested from a running
  :class:`~repro.serve.server.BrickServer` whose session cache is
  already warm (every repeat is a cache hit answered from the artifact
  store).

Emits ``BENCH_serve.json`` and asserts the served warm path is at
least 5x faster than the cold CLI, the floor the serving layer must
hold.  A burst of identical concurrent requests is also priced to
report the coalescing rate (N requests -> 1 computation).
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time

from bench_util import emit_bench_json, print_table
from repro.perf.cache import CharacterizationCache
from repro.serve import BrickServer, ServeClient, encode_frame
from repro.session import Session
from repro.tech import cmos65

#: The serving layer must beat the cold CLI by at least this factor.
SPEEDUP_FLOOR = 5.0

SWEEP_PARAMS = {"total_words": 128, "bits": [8, 16, 32],
                "brick_words": [16, 32, 64]}

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _start_server(session):
    """Run one BrickServer on a daemon thread; returns it once bound."""
    server = BrickServer(session)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server._shutdown_event.wait()
            await server.drain()
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(20), "server failed to start"
    return server, thread


def _cold_cli_seconds(repeats=3):
    """Best-of wall clock of the full batch CLI path (fresh process,
    no cache): what one-shot invocations paid before the server."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "--no-cache", "sweep"],
            check=True, capture_output=True, cwd=_REPO_ROOT, env=env)
        best = min(best, time.perf_counter() - start)
    return best


def _warm_served_seconds(client, repeats=5):
    """Best-of round-trip for the already-computed sweep (cache hit +
    artifact-store lookup; includes the TCP round trip)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        client.sweep(**SWEEP_PARAMS)
        best = min(best, time.perf_counter() - start)
    return best


def _coalesced_burst(port, n=8):
    """N identical sweeps in one sendall on one connection; returns the
    reply count that was answered without recomputing."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    try:
        reader = sock.makefile("rb")
        sock.sendall(b"".join(encode_frame(
            {"v": 1, "id": f"b{i}", "type": "sweep",
             "params": dict(SWEEP_PARAMS, bits=[4, 12])})
            for i in range(n)))
        replies = [json.loads(reader.readline().decode())
                   for _ in range(n)]
    finally:
        sock.close()
    assert all(r["ok"] for r in replies)
    return n


def test_serve_warm_vs_cold_cli_json(benchmark):
    session = Session(cmos65(), cache=CharacterizationCache())
    server, thread = _start_server(session)
    try:
        with ServeClient(port=server.port) as client:
            start = time.perf_counter()
            client.sweep(**SWEEP_PARAMS)  # first request: cold compute
            first_request_s = time.perf_counter() - start
            warm_s = benchmark.pedantic(
                lambda: _warm_served_seconds(client),
                rounds=1, iterations=1)
            burst_n = _coalesced_burst(server.port)
            coalesce = server.ctx.coalescer.stats.as_dict()
            client.shutdown()
        thread.join(20)
    finally:
        session.close()

    cold_s = _cold_cli_seconds()
    speedup = cold_s / warm_s

    print_table(
        "characterization-as-a-service vs batch CLI (Fig. 4c sweep)",
        ("path", "wall clock", "notes"),
        [("cold CLI", f"{cold_s * 1e3:8.1f} ms",
          "fresh process, no cache"),
         ("served first", f"{first_request_s * 1e3:8.1f} ms",
          "daemon cold compute"),
         ("served warm", f"{warm_s * 1e3:8.1f} ms",
          f"cache hit, {speedup:.0f}x vs cold CLI")])
    print(f"coalescing: {coalesce['coalesced']} of {burst_n} burst "
          f"requests shared one computation")

    emit_bench_json("serve", {
        "sweep_params": SWEEP_PARAMS,
        "cold_cli_s": cold_s,
        "served_first_request_s": first_request_s,
        "served_warm_s": warm_s,
        "warm_speedup_vs_cold_cli": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "burst_requests": burst_n,
        "coalesce": coalesce,
    })
    assert speedup >= SPEEDUP_FLOOR, (
        f"serving layer regression: warm served path only "
        f"{speedup:.1f}x faster than the cold CLI "
        f"(floor {SPEEDUP_FLOOR:.0f}x)")

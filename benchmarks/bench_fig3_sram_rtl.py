"""Fig. 3: the 32x10 bit 1R1W SRAM built from two stacked 16x10 bricks.

Reproduces the paper's canonical RTL example end-to-end: the structural
design (two stacked bricks + twin 5-to-32 standard-cell decoders), its
Verilog rendering, functional verification against a reference memory
model, and the full physical synthesis flow on it.
"""

import random

import pytest

from bench_util import print_table
from repro.bricks import generate_brick_library
from repro.rtl import LogicSimulator, elaborate, emit_module, fig3_sram
from repro.units import MHZ, PJ


@pytest.fixture(scope="module")
def fig3(session, stdlib):
    module, config = fig3_sram()
    bricks, gen_seconds = generate_brick_library(
        [(config.brick, config.stack)], session=session)
    library = stdlib.merged_with(bricks)
    flat = elaborate(module, library)

    def stimulus(sim):
        rng = random.Random(3)
        for _ in range(100):
            sim.set_input("raddr", rng.randrange(32))
            sim.set_input("waddr", rng.randrange(32))
            sim.set_input("din", rng.randrange(1024))
            sim.set_input("we", 1)
            sim.clock()

    flow = session.run_flow(module, library, stimulus=stimulus,
                            anneal_moves=2000)
    return module, config, library, flat, flow, gen_seconds


def test_fig3_structure_report(benchmark, fig3):
    module, config, library, flat, flow, gen_seconds = fig3
    benchmark.pedantic(lambda: flat.stats(), rounds=1, iterations=1)
    stats = flat.stats()
    print_table(
        "Fig. 3 — 32x10b 1R1W SRAM from two stacked 16x10b bricks",
        ("metric", "value"),
        [
            ("brick macro", "brick_16_10_s2 (one 2x-stacked bank)"),
            ("std cells", stats["combinational"]),
            ("nets", stats["nets"]),
            ("brick library gen", f"{gen_seconds * 1e3:.1f} ms"),
            ("fmax", f"{flow.fmax / MHZ:.0f} MHz"),
            ("energy/access", f"{flow.power.energy_per_cycle / PJ:.2f} pJ"),
            ("die area", f"{flow.area_um2:.0f} um^2"),
        ])
    assert stats["bricks"] == 1
    assert stats["combinational"] > 80  # two 5->32 decoders dominate


def test_fig3_verilog_matches_papers_listing_shape(benchmark, fig3):
    module, *_ = fig3
    text = benchmark.pedantic(lambda: emit_module(module), rounds=1,
                              iterations=1)
    # The constructs the paper's listing shows: brick instantiation by
    # name, decoders, 1R1W port structure.
    assert "brick_16_10_s2" in text
    assert "input [4:0] raddr" in text
    assert "input [4:0] waddr" in text
    assert "NAND" in text or "AND" in text
    print("\nFig. 3 Verilog (first 12 lines):")
    print("\n".join(text.splitlines()[:12]))


def test_fig3_functional_equivalence(benchmark, fig3):
    """Random-traffic equivalence against a dict-based memory model."""
    module, config, library, *_ = fig3

    def kernel():
        sim = LogicSimulator(elaborate(module, library))
        rng = random.Random(11)
        model = {}
        for _ in range(200):
            ra, wa = rng.randrange(32), rng.randrange(32)
            di, we = rng.randrange(1024), rng.random() < 0.5
            sim.set_input("raddr", ra)
            sim.set_input("waddr", wa)
            sim.set_input("din", di)
            sim.set_input("we", int(we))
            sim.clock()
            expect = model.get(ra)
            if expect is not None:
                assert sim.get_output("dout") == expect
            if we:
                model[wa] = di
        return True

    assert benchmark.pedantic(kernel, rounds=1, iterations=1)


def test_benchmark_elaboration(benchmark, fig3):
    module, config, library, *_ = fig3
    flat = benchmark(lambda: elaborate(module, library))
    assert flat.stats()["bricks"] == 1

"""Microbenchmark: the vectorized batch-estimator kernel.

Prices synthetic brick populations of 10^2 / 10^3 / 10^4 points through
:func:`repro.bricks.estimate_brick_batch` and compares against the
scalar ``compile_brick`` + ``estimate_brick`` loop, emitting
``BENCH_batch_estimator.json``.  This is the kernel behind the
``BENCH_fig4c`` cold-sweep speedup and the ROADMAP's million-point
exploration target: throughput should *grow* with batch size as the
fixed numpy dispatch cost amortizes.

The scalar loop is priced on a bounded subsample at the largest size
(it runs at a few hundred points/s) and reported as such.
"""

import time

import pytest

from bench_util import emit_bench_json, print_table
from repro.bricks import compile_brick, estimate_brick, \
    estimate_brick_batch
from repro.bricks.spec import BrickSpec
from repro.cells.bitcells import MEMORY_TYPES

#: Scalar pricing is ~3 orders slower; cap how many points it replays.
_SCALAR_SAMPLE_CAP = 200


def _population(n):
    """A deterministic mixed-type population of ``n`` brick points."""
    words_options = (4, 8, 16, 32, 64, 128)
    bits_options = (4, 8, 10, 12, 16, 32)
    points = []
    for i in range(n):
        spec = BrickSpec(MEMORY_TYPES[i % len(MEMORY_TYPES)],
                         words_options[i % len(words_options)],
                         bits_options[(i // 3) % len(bits_options)])
        points.append((spec, 1 + (i % 8)))
    return points


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_estimator_throughput_json(benchmark, tech):
    sizes = (100, 1000, 10000)
    rows = []
    sections = {}
    for n in sizes:
        points = _population(n)
        sample = points[:min(n, _SCALAR_SAMPLE_CAP)]

        def scalar():
            for spec, stack in sample:
                compiled = compile_brick(spec, tech,
                                         target_stack=stack)
                estimate_brick(compiled, tech, stack=stack)

        def vector():
            return estimate_brick_batch(points, tech)

        # Warm numpy dispatch paths before timing.
        vector()
        scalar_s = _best_of(scalar, 3)
        batch_s = _best_of(vector, 5 if n >= 10000 else 10)
        scalar_pps = len(sample) / scalar_s
        batch_pps = n / batch_s
        sections[str(n)] = {
            "batch_points_per_s": batch_pps,
            "batch_wall_clock_s": batch_s,
            "scalar_points_per_s": scalar_pps,
            "scalar_sample_points": len(sample),
            "speedup": batch_pps / scalar_pps,
        }
        rows.append((n, len(sample), f"{scalar_pps:.0f}",
                     f"{batch_pps:.0f}",
                     f"{batch_pps / scalar_pps:.1f}x"))
    print_table(
        "Batch-estimator kernel throughput (mixed brick types)",
        ("batch", "scalar sample", "scalar[pts/s]", "batch[pts/s]",
         "speedup"),
        rows)
    emit_bench_json("batch_estimator", {
        "sizes": sections,
        "scalar_sample_cap": _SCALAR_SAMPLE_CAP,
    })
    # The kernel exists to beat the scalar loop by >=10x at population
    # scale; at 10^3+ it does so with a wide margin.
    for n in (1000, 10000):
        assert sections[str(n)]["speedup"] >= 10.0, (
            f"batch kernel only {sections[str(n)]['speedup']:.1f}x "
            f"at n={n}")
    benchmark.pedantic(
        lambda: estimate_brick_batch(_population(1000), tech),
        rounds=3, iterations=1)


def test_batch_matches_scalar_spot_check(tech):
    """The microbench population prices identically under both paths."""
    points = _population(50)
    vectors = estimate_brick_batch(points, tech)
    for (spec, stack), vector in zip(points, vectors):
        compiled = compile_brick(spec, tech, target_stack=stack)
        scalar = estimate_brick(compiled, tech, stack=stack)
        assert vector.read_delay == pytest.approx(scalar.read_delay,
                                                  rel=1e-9)
        assert vector.area_um2 == pytest.approx(scalar.area_um2,
                                                rel=1e-9)
        assert vector.read_energy == pytest.approx(scalar.read_energy,
                                                   rel=1e-9)

"""Table 1: tool estimation vs SPICE simulation on RC-extracted arrays.

Reproduces the paper's validation matrix: 16x10 bit and 32x12 bit 8T
bricks at 1x/4x/8x stacking, read critical path and read/write energy,
comparing the closed-form estimator against the switch-level transient
reference.  Paper error bands: 2-7 % (critical path), 0-4 % (read
energy), 0-2 % (write energy); our substitution reproduces the sign and
near-band magnitudes (see EXPERIMENTS.md).
"""

import pytest

from bench_util import print_table
from repro.bricks import (
    compile_brick,
    estimate_brick,
    measure_read,
    measure_write,
    sram_brick,
)
from repro.units import PJ, PS, ratio_percent

_CONFIGS = [(16, 10), (32, 12)]
_STACKS = (1, 4, 8)


@pytest.fixture(scope="module")
def table1(tech):
    rows = []
    for words, bits in _CONFIGS:
        spec = sram_brick(words, bits)
        for stack in _STACKS:
            compiled = compile_brick(spec, tech, target_stack=stack)
            est = estimate_brick(compiled, tech, stack=stack)
            ref_delay, ref_read = measure_read(compiled, tech,
                                               stack=stack)
            ref_write = measure_write(compiled, tech, stack=stack)
            rows.append({
                "brick": f"{words}x{bits}",
                "stack": stack,
                "tool_delay": est.read_delay,
                "ref_delay": ref_delay,
                "tool_read": est.read_energy,
                "ref_read": ref_read,
                "tool_write": est.write_energy,
                "ref_write": ref_write,
            })
    return rows


def test_table1_report_and_error_bands(benchmark, table1):
    benchmark.pedantic(lambda: table1, rounds=1, iterations=1)
    printable = []
    for r in table1:
        printable.append((
            r["brick"], f"{r['stack']}x",
            f"{r['tool_delay'] / PS:.0f}", f"{r['ref_delay'] / PS:.0f}",
            f"{ratio_percent(r['tool_delay'], r['ref_delay']):+.1f}%",
            f"{r['tool_read'] / PJ:.3f}", f"{r['ref_read'] / PJ:.3f}",
            f"{ratio_percent(r['tool_read'], r['ref_read']):+.1f}%",
            f"{r['tool_write'] / PJ:.3f}",
            f"{r['ref_write'] / PJ:.3f}",
            f"{ratio_percent(r['tool_write'], r['ref_write']):+.1f}%",
        ))
    print_table(
        "Table 1 — Tool estimation vs switch-level reference",
        ("brick", "stk", "tool[ps]", "ref[ps]", "d_err",
         "toolRd[pJ]", "refRd[pJ]", "rd_err",
         "toolWr[pJ]", "refWr[pJ]", "wr_err"),
        printable)
    for r in table1:
        delay_err = abs(ratio_percent(r["tool_delay"], r["ref_delay"]))
        read_err = abs(ratio_percent(r["tool_read"], r["ref_read"]))
        write_err = abs(ratio_percent(r["tool_write"], r["ref_write"]))
        # Paper: 2-7 / 0-4 / 0-2 %.  Our bands, honestly wider at the
        # smallest configuration (so is the paper's worst point).
        assert delay_err < 8.0, r
        assert read_err < 25.0, r
        assert write_err < 20.0, r


def test_table1_stacking_trends(benchmark, table1):
    """Delay and energy must grow monotonically with stacking on BOTH
    sides of the comparison, as in the paper's rows."""
    benchmark.pedantic(lambda: table1, rounds=1, iterations=1)
    for brick in ("16x10", "32x12"):
        rows = [r for r in table1 if r["brick"] == brick]
        for key in ("tool_delay", "ref_delay", "tool_read", "ref_read"):
            values = [r[key] for r in rows]
            assert values[0] < values[1] < values[2], (brick, key)


def test_table1_anchor_point(benchmark, table1):
    """Calibration anchor: 16x10 @ 1x near the paper's 247 ps."""
    benchmark.pedantic(lambda: table1, rounds=1, iterations=1)
    row = next(r for r in table1
               if r["brick"] == "16x10" and r["stack"] == 1)
    assert abs(row["tool_delay"] - 247 * PS) / (247 * PS) < 0.10


def test_benchmark_estimator_throughput(benchmark, tech):
    """The estimator is the 'instantaneous' half of Table 1: time it."""
    compiled = compile_brick(sram_brick(16, 10), tech, target_stack=8)

    def kernel():
        return estimate_brick(compiled, tech, stack=8)

    result = benchmark(kernel)
    assert result.read_delay > 0


def test_benchmark_reference_transient(benchmark, tech):
    """The reference simulation cost (one 16x10 1x read transient)."""
    compiled = compile_brick(sram_brick(16, 10), tech, target_stack=1)

    def kernel():
        return measure_read(compiled, tech, stack=1)

    delay, energy = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert delay > 0 and energy > 0

"""Fig. 4c: rapid design-space exploration over brick/memory sizes.

Reproduces the paper's 9-brick sweep — 128x{8,16,32} bit single-partition
SRAMs each built from 16/32/64-word bricks — asserting every trend
statement of Section 3 plus the headline usability claim: "compiling the
netlists and generating the library estimations were finalized within 2
seconds of wall clock time."
"""

import time

import pytest

from bench_util import emit_bench_json, print_table
from repro.bricks import generate_brick_library, sram_brick
from repro.explore import pareto_front
from repro.obs.export import span_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import stage_breakdown
from repro.obs.trace import Tracer
from repro.perf import CharacterizationCache
from repro.units import PJ, PS


@pytest.fixture(scope="module")
def fig4c(session):
    return session.sweep_partitions()


def test_fig4c_report(benchmark, fig4c):
    benchmark.pedantic(lambda: fig4c, rounds=1, iterations=1)
    reference = fig4c.point(128, 8, 16)
    rows = []
    for point in sorted(fig4c.points,
                        key=lambda p: (p.bits, p.brick_words)):
        norm = point.normalized(reference)
        rows.append((
            f"128x{point.bits}b",
            f"{point.brick_words}x{point.bits}b x{point.stack}",
            f"{point.read_delay / PS:.0f}",
            f"{point.read_energy / PJ:.3f}",
            f"{point.area_um2:.0f}",
            f"{norm['delay']:.2f}",
            f"{norm['energy']:.2f}",
            f"{norm['area']:.2f}",
        ))
    print_table(
        "Fig. 4c — Design-space exploration (normalized to 128x8b "
        "from 16x8b bricks)",
        ("memory", "brick", "delay[ps]", "energy[pJ]", "area[um2]",
         "nDelay", "nEnergy", "nArea"),
        rows)
    print(f"\nsweep wall clock: {fig4c.wall_clock_s * 1e3:.0f} ms "
          f"(paper: 'within 2 seconds')")


def test_fig4c_two_second_claim(benchmark, session):
    """Both the estimator sweep and full library generation (netlists +
    LUT characterization) must finish within the paper's 2 seconds."""

    def kernel():
        requests = [(sram_brick(w, b), 128 // w)
                    for w in (16, 32, 64) for b in (8, 16, 32)]
        return generate_brick_library(requests, session=session)

    library, elapsed = benchmark.pedantic(kernel, rounds=1,
                                          iterations=1)
    assert len(library) == 9
    assert elapsed < 2.0


def test_fig4c_trend_larger_bricks_slower(benchmark, fig4c):
    """'As the brick size gets larger, critical path also increases.'"""
    benchmark.pedantic(lambda: fig4c, rounds=1, iterations=1)
    for bits in (8, 16, 32):
        delays = [fig4c.point(128, bits, bw).read_delay
                  for bw in (16, 32, 64)]
        assert delays[0] < delays[1] < delays[2]


def test_fig4c_trend_larger_bricks_cheaper(benchmark, fig4c):
    """'Partition with larger bricks consume less energy and area' —
    area strictly, energy against the smallest-brick build."""
    benchmark.pedantic(lambda: fig4c, rounds=1, iterations=1)
    for bits in (8, 16, 32):
        energies = [fig4c.point(128, bits, bw).read_energy
                    for bw in (16, 32, 64)]
        areas = [fig4c.point(128, bits, bw).area_um2
                 for bw in (16, 32, 64)]
        assert areas[0] > areas[1] > areas[2]
        assert energies[0] == max(energies)


def test_fig4c_cross_analysis(benchmark, fig4c):
    """'128x16bit memory built with 16x16bit bricks is still faster than
    128x8bit memory built with 64x8bit bricks, while it consumes nearly
    the same energy as the 128x32bit memory built with 64x32bit
    bricks.'"""
    benchmark.pedantic(lambda: fig4c, rounds=1, iterations=1)
    p16_16 = fig4c.point(128, 16, 16)
    p8_64 = fig4c.point(128, 8, 64)
    p32_64 = fig4c.point(128, 32, 64)
    assert p16_16.read_delay < p8_64.read_delay
    # "nearly the same energy": within ~2x in our calibration.
    ratio = p16_16.read_energy / p32_64.read_energy
    assert 0.4 < ratio < 1.6


def test_fig4c_pareto_front(benchmark, fig4c):
    """The flow's purpose: pareto curves over block designs."""
    benchmark.pedantic(lambda: fig4c, rounds=1, iterations=1)
    front = pareto_front(
        fig4c.points,
        lambda p: (p.read_delay, p.read_energy, p.area_um2))
    assert 1 <= len(front) <= len(fig4c.points)
    print(f"\npareto-optimal designs: "
          f"{[(p.label) for p in front]}")


def test_benchmark_sweep_throughput(benchmark, session):
    result = benchmark(lambda: session.sweep_partitions())
    assert len(result.points) == 9


def _time_best(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _vector_kernel_section(tech, points):
    """Scalar vs vectorized pricing of one population, uncached."""
    from repro.bricks import compile_brick, estimate_brick, \
        estimate_brick_batch

    def scalar():
        for spec, stack in points:
            compiled = compile_brick(spec, tech, target_stack=stack)
            estimate_brick(compiled, tech, stack=stack)

    scalar_s = _time_best(scalar, 5)
    batch_s = _time_best(lambda: estimate_brick_batch(points, tech), 20)
    n = len(points)
    return {
        "n_points": n,
        "scalar_points_per_s": n / scalar_s,
        "batch_points_per_s": n / batch_s,
        "speedup": scalar_s / batch_s,
    }


def test_fig4c_cold_vs_warm_cache_json(benchmark, session):
    """Perf tracking artifact: cold vs warm-cache wall clock for the
    paper's 9-brick sweep, emitted as BENCH_fig4c.json.

    Floors: warm cache >= 2x faster than even the vectorized cold path,
    and cold throughput >= 10x the pre-vectorization seed (~578/s).

    The artifact also carries a ``vector_kernel`` section (scalar vs
    batch pricing of the same population), the run's unified metrics
    snapshot (cache/executor/counter state) and the per-stage timing
    breakdown aggregated from the trace spans, so the JSON answers not
    just "how fast" but "where the time went"."""
    tracer = Tracer()
    cold_session = session.derive(cache=CharacterizationCache(),
                                  tracer=tracer,
                                  metrics=MetricsRegistry())

    def run():
        return cold_session.sweep_partitions()

    cold = benchmark.pedantic(run, rounds=1, iterations=1)
    # One-shot cold timing is noisy at millisecond scale; keep the best
    # of a few fresh-cache runs as the representative cold number.
    for _ in range(4):
        rerun_session = session.derive(cache=CharacterizationCache(),
                                       metrics=MetricsRegistry())
        rerun = rerun_session.sweep_partitions()
        if rerun.wall_clock_s < cold.wall_clock_s:
            cold = rerun
    warm = min((run() for _ in range(5)),
               key=lambda r: r.wall_clock_s)
    n = len(cold.points)
    speedup = cold.wall_clock_s / warm.wall_clock_s
    tracer.validate()
    records = [span_record(span) for span in tracer.spans]
    breakdown = [
        {"stage": name, "calls": calls,
         "total_s": total, "percent": pct}
        for name, calls, total, pct in stage_breakdown(records)]
    vector_kernel = _vector_kernel_section(
        session.tech,
        [(sram_brick(w, b), 128 // w)
         for w in (16, 32, 64) for b in (8, 16, 32)])
    emit_bench_json("fig4c", {
        "n_points": n,
        "cold_wall_clock_s": cold.wall_clock_s,
        "warm_wall_clock_s": warm.wall_clock_s,
        "warm_speedup": speedup,
        "cold_points_per_s": n / cold.wall_clock_s,
        "warm_points_per_s": n / warm.wall_clock_s,
        "paper_claim_s": 2.0,
        "within_paper_claim": cold.wall_clock_s < 2.0,
        "vector_kernel": vector_kernel,
        "stage_breakdown": breakdown,
        "metrics": cold_session.metrics_snapshot(),
    })
    assert cold.wall_clock_s < 2.0
    assert speedup >= 2.0, (
        f"warm cache only {speedup:.1f}x faster than cold")
    assert n / cold.wall_clock_s >= 5780.0, (
        f"cold sweep at {n / cold.wall_clock_s:.0f} points/s, "
        f"below 10x the pre-vectorization seed")

"""Ablations and the paper's Section 6 future work.

Three studies beyond the paper's published data:

1. *Brick selection as an optimization variable* — Section 6: "the
   synthesis tools could optimize the array size and placement of the
   memory bricks in a standard cell like manner."  We sweep candidate
   brick sizes per memory requirement and quantify the gain over the
   worst fixed choice.
2. *Drive resizing ablation* — how much of the flow's timing comes from
   post-route drive selection.
3. *Technology retargeting* — the one-time recharacterization cost
   Section 6 discusses, demonstrated by recompiling the canonical brick
   at scaled nodes.
"""


from bench_util import print_table
from repro.bricks import compile_brick, estimate_brick, sram_brick
from repro.rtl import fig3_sram
from repro.tech import cmos14, cmos28, cmos45, cmos65
from repro.units import PJ, PS


def test_ablation_brick_selection_gain(benchmark, session):
    """Automatic brick selection vs the worst fixed brick choice."""

    def kernel():
        rows = []
        for total_words, bits in [(128, 8), (128, 16), (256, 16)]:
            sweep = session.sweep_partitions(
                total_words_options=(total_words,),
                bits_options=(bits,),
                brick_words_options=(8, 16, 32, 64))
            choice = session.optimize_brick_selection(
                total_words, bits,
                brick_words_options=(8, 16, 32, 64))

            def cost(p):
                best_d = min(q.read_delay for q in sweep.points)
                best_e = min(q.read_energy for q in sweep.points)
                best_a = min(q.area_um2 for q in sweep.points)
                return ((p.read_delay / best_d)
                        * (p.read_energy / best_e)
                        * (p.area_um2 / best_a) ** 0.5)

            worst = max(sweep.points, key=cost)
            rows.append((total_words, bits, choice.point.brick_words,
                         worst.brick_words,
                         cost(worst) / cost(choice.point)))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    print_table(
        "Ablation — automatic brick selection (Section 6 future work)",
        ("words", "bits", "chosen brick", "worst brick",
         "cost gain"),
        [(w, b, f"{cw}-word", f"{ww}-word", f"{g:.2f}x")
         for w, b, cw, ww, g in rows])
    for *_, gain in rows:
        assert gain > 1.1  # the optimizer must beat the worst choice


def test_ablation_drive_resizing(benchmark, session, stdlib):
    """Post-route drive selection vs everything at X1."""
    from repro.bricks import generate_brick_library

    module_a, config = fig3_sram()
    module_b, _ = fig3_sram()
    bricks, _ = generate_brick_library(
        [(config.brick, config.stack)], session=session)
    library = stdlib.merged_with(bricks)

    def kernel():
        unsized = session.run_flow(module_a, library,
                                   anneal_moves=1000, resize=False)
        sized = session.run_flow(module_b, library,
                                 anneal_moves=1000, resize=True)
        return unsized, sized

    unsized, sized = benchmark.pedantic(kernel, rounds=1, iterations=1)
    speedup = unsized.timing.min_period / sized.timing.min_period
    print(f"\nresizing ablation: X1-only {unsized.timing.min_period / PS:.0f} ps "
          f"-> resized {sized.timing.min_period / PS:.0f} ps "
          f"({speedup:.2f}x), {sized.resized_cells} cells touched")
    assert sized.resized_cells > 0
    assert speedup >= 0.98  # resizing never badly hurts


def test_ablation_retargeting(benchmark):
    """Section 6: the methodology retargets by recharacterization."""

    def kernel():
        rows = []
        for factory in (cmos65, cmos45, cmos28, cmos14):
            tech = factory()
            compiled = compile_brick(sram_brick(16, 10), tech)
            est = estimate_brick(compiled, tech)
            rows.append((tech.name, est.read_delay, est.read_energy))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    print_table(
        "Ablation — 16x10b brick across technology nodes",
        ("node", "read delay", "read energy"),
        [(name, f"{d / PS:.0f} ps", f"{e / PJ:.3f} pJ")
         for name, d, e in rows])
    delays = [d for _, d, _ in rows]
    energies = [e for _, _, e in rows]
    # Scaled nodes are faster and lower-energy, monotonically.
    assert delays == sorted(delays, reverse=True)
    assert energies == sorted(energies, reverse=True)

"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper
(see DESIGN.md's experiment index), printing the rows it reproduces and
asserting the paper's qualitative claims.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.cells import make_stdcell_library
from repro.session import Session
from repro.tech import cmos65


@pytest.fixture(scope="session")
def tech():
    return cmos65()


@pytest.fixture(scope="session")
def session(tech):
    """Shared run context: one characterization cache across benchmarks."""
    return Session(tech)


@pytest.fixture(scope="session")
def stdlib(tech):
    return make_stdcell_library(tech)

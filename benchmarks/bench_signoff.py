"""Benchmark: the Monte Carlo statistical signoff engine.

Compares the vectorized signoff path (corner bases priced once, PVT
scale columns applied as numpy ops, chunked defect draws) against the
naive scalar baseline it replaces — one ``tech.scaled`` + compile +
estimate per sample — and emits ``BENCH_signoff.json``.

Two claims are asserted machine-readably:

* throughput — the vectorized engine must price samples at >= 5x the
  scalar per-sample loop's rate (the ISSUE's acceptance bar; in
  practice it is orders of magnitude);
* resumability — a killed-then-resumed signoff reproduces the
  uninterrupted report byte for byte.
"""

import random
import time

from bench_util import emit_bench_json, print_table
from repro.bricks.compiler import compile_brick
from repro.bricks.estimator import estimate_brick
from repro.bricks.spec import BrickSpec
from repro.faults import DefectModel, RepairPlan, apply_repair, inject
from repro.perf.cache import CharacterizationCache
from repro.session import Session
from repro.signoff import SignoffEngine, pvt_columns, stream_key
from repro.silicon.variation import VariationModel
from repro.tech.corners import corner

#: Samples priced by the scalar baseline (kept small: it is slow).
SCALAR_SAMPLES = 128

#: Samples priced by the vectorized engine.
VECTOR_SAMPLES = 4096

_SPEC = BrickSpec("8T", 16, 10)


def _scalar_loop(tech, n_samples):
    """The path signoff replaces: every sample re-derates the
    technology at every corner and re-runs the scalar compile +
    estimate — the same per-sample x per-corner coverage the engine's
    report delivers."""
    model = VariationModel()
    defects = DefectModel()
    repair = RepairPlan()
    key = stream_key(2015, f"signoff:{_SPEC.name}:s1")
    cols = pvt_columns(model, key, 0, n_samples)
    corner_techs = [corner(name).apply(tech)
                    for name in ("nominal", "best", "worst")]
    delays = []
    for i in range(n_samples):
        faulty = inject(_SPEC, defects,
                        random.Random(f"{key}:defect:{i}"))
        apply_repair(faulty, repair)
        derate = faulty.delay_derate(defects)
        for base in corner_techs:
            die_tech = base.scaled(
                r_scale=float(cols["r_scale"][i]),
                c_scale=float(cols["c_scale"][i]),
                vdd_scale=float(cols["vdd_scale"][i]),
                leak_scale=float(cols["leak_scale"][i]),
                name_suffix=f"@mc{i}")
            compiled = compile_brick(_SPEC, die_tech, target_stack=1)
            perf = estimate_brick(compiled, die_tech, stack=1)
            delays.append(perf.read_delay * derate)
    return delays


def test_signoff_throughput_json(benchmark, tech):
    start = time.perf_counter()
    _scalar_loop(tech, SCALAR_SAMPLES)
    scalar_s = time.perf_counter() - start
    scalar_sps = SCALAR_SAMPLES / scalar_s

    session = Session(tech, jobs=1, cache=CharacterizationCache())
    engine = SignoffEngine(session, spec=_SPEC,
                           n_samples=VECTOR_SAMPLES, chunk_size=256)
    start = time.perf_counter()
    report = engine.run(resume=False)
    vector_s = time.perf_counter() - start
    vector_sps = VECTOR_SAMPLES / vector_s
    speedup = vector_sps / scalar_sps

    print_table(
        "Monte Carlo signoff throughput",
        ("path", "samples", "wall[s]", "samples/s", "speedup"),
        [("scalar loop", SCALAR_SAMPLES, f"{scalar_s:.3f}",
          f"{scalar_sps:.0f}", "1.0x"),
         ("signoff engine", VECTOR_SAMPLES, f"{vector_s:.3f}",
          f"{vector_sps:.0f}", f"{speedup:.1f}x")])
    emit_bench_json("signoff", {
        "spec": _SPEC.name,
        "scalar": {"n_samples": SCALAR_SAMPLES,
                   "wall_clock_s": scalar_s,
                   "samples_per_s": scalar_sps},
        "vectorized": {"n_samples": VECTOR_SAMPLES,
                       "wall_clock_s": vector_s,
                       "samples_per_s": vector_sps,
                       "chunks": report.chunks_total},
        "speedup": speedup,
        "raw_yield": report.raw_yield["rate"],
        "repaired_yield": report.repaired_yield["rate"],
    })
    assert speedup >= 5.0, (
        f"vectorized signoff only {speedup:.1f}x the scalar loop")
    benchmark.pedantic(
        lambda: SignoffEngine(
            Session(tech, jobs=1, cache=CharacterizationCache()),
            spec=_SPEC, n_samples=1024,
            chunk_size=256).run(resume=False),
        rounds=3, iterations=1)


def test_killed_signoff_resumes_byte_identical(tech):
    """Kill a signoff mid-stream; the resumed report must match the
    uninterrupted run byte for byte."""
    kwargs = dict(spec=_SPEC, n_samples=2048, chunk_size=128)
    golden = SignoffEngine(
        Session(tech, jobs=1, cache=CharacterizationCache()),
        **kwargs).run()

    cache = CharacterizationCache()

    class Killed(Exception):
        pass

    def killer(done, total, record):
        if done >= total // 2:
            raise Killed()

    try:
        SignoffEngine(Session(tech, jobs=1, cache=cache),
                      **kwargs).run(progress=killer)
        raise AssertionError("signoff was not killed")
    except Killed:
        pass
    resumed = SignoffEngine(Session(tech, jobs=1, cache=cache),
                            **kwargs).run()
    assert resumed.resumed_chunks >= 1
    assert resumed.render() == golden.render()

"""Section 5 circuit-level facts: the CAM brick vs the SRAM brick.

The paper reports, for the same 16x10 bit array: "the CAM brick area is
83% bigger than SRAM brick area, and 26% slower. A single read for the
SRAM brick consumes 0.73mW power whereas it is 0.87mW for read and
1.94mW for matching for a CAM brick (based on Spice simulations at
0.8GHz clock)."  This bench reproduces the comparison from our compiled
bricks and asserts every ordering (and the rough magnitudes).
"""

import pytest

from bench_util import print_table
from repro.bricks import (
    cam_brick,
    compile_brick,
    estimate_brick,
    generate_layout,
    sram_brick,
)
from repro.units import GHZ, MW, PS

_FREQ = 0.8 * GHZ


@pytest.fixture(scope="module")
def sec5(tech):
    sram = compile_brick(sram_brick(16, 10), tech)
    cam = compile_brick(cam_brick(16, 10), tech)
    return {
        "sram_est": estimate_brick(sram, tech),
        "cam_est": estimate_brick(cam, tech),
        "sram_layout": generate_layout(sram, tech),
        "cam_layout": generate_layout(cam, tech),
    }


def test_sec5_report(benchmark, sec5):
    benchmark.pedantic(lambda: sec5, rounds=1, iterations=1)
    sram, cam = sec5["sram_est"], sec5["cam_est"]
    area_ratio = sec5["cam_layout"].area_um2 / \
        sec5["sram_layout"].area_um2
    delay_ratio = cam.match_delay / sram.read_delay
    rows = [
        ("SRAM brick area", f"{sec5['sram_layout'].area_um2:.0f} um^2",
         "reference"),
        ("CAM brick area", f"{sec5['cam_layout'].area_um2:.0f} um^2",
         f"+{(area_ratio - 1) * 100:.0f}% (paper: +83%)"),
        ("SRAM read path", f"{sram.read_delay / PS:.0f} ps",
         "reference"),
        ("CAM match path", f"{cam.match_delay / PS:.0f} ps",
         f"+{(delay_ratio - 1) * 100:.0f}% (paper: +26%)"),
        ("SRAM read power", f"{sram.read_power(_FREQ) / MW:.2f} mW",
         "paper: 0.73 mW @ 0.8 GHz"),
        ("CAM read power", f"{cam.read_power(_FREQ) / MW:.2f} mW",
         "paper: 0.87 mW"),
        ("CAM match power", f"{cam.match_power(_FREQ) / MW:.2f} mW",
         "paper: 1.94 mW"),
    ]
    print_table("Section 5 — CAM brick vs SRAM brick (16x10b)",
                ("metric", "value", "note"), rows)


def test_sec5_area_ratio(benchmark, sec5):
    benchmark.pedantic(lambda: sec5, rounds=1, iterations=1)
    ratio = sec5["cam_layout"].area_um2 / sec5["sram_layout"].area_um2
    # Paper: 1.83x. Band keeps the ordering meaningful.
    assert 1.5 < ratio < 2.2


def test_sec5_delay_ratio(benchmark, sec5):
    benchmark.pedantic(lambda: sec5, rounds=1, iterations=1)
    ratio = sec5["cam_est"].match_delay / sec5["sram_est"].read_delay
    # Paper: 1.26x slower.
    assert 1.05 < ratio < 1.8


def test_sec5_power_ordering(benchmark, sec5):
    benchmark.pedantic(lambda: sec5, rounds=1, iterations=1)
    sram, cam = sec5["sram_est"], sec5["cam_est"]
    p_sram_read = sram.read_power(_FREQ)
    p_cam_read = cam.read_power(_FREQ)
    p_cam_match = cam.match_power(_FREQ)
    # Paper ordering: 0.73 < 0.87 < 1.94 mW.
    assert p_sram_read < p_cam_read < p_cam_match
    # Match costs roughly twice a read (paper: 1.94/0.87 = 2.2x).
    assert 1.5 < p_cam_match / p_cam_read < 3.5


def test_sec5_same_bitcell_count(benchmark, tech, sec5):
    """'Both implementations use the same bitcells' — the arrays match,
    only the cell type and periphery differ."""
    benchmark.pedantic(lambda: sec5, rounds=1, iterations=1)
    sram = compile_brick(sram_brick(16, 10), tech)
    cam = compile_brick(cam_brick(16, 10), tech)
    assert sram.spec.words == cam.spec.words
    assert sram.spec.bits == cam.spec.bits


def test_sec5_match_path_validated_against_reference(benchmark,
                                                      tech):
    """Extension: the CAM match path gets the same estimator-vs-
    transient-reference validation Table 1 gives the SRAM read path."""
    from repro.bricks import measure_match
    compiled = compile_brick(cam_brick(16, 10), tech)
    est = estimate_brick(compiled, tech)
    delay, energy = benchmark.pedantic(
        lambda: measure_match(compiled, tech), rounds=1, iterations=1)
    delay_err = (est.match_delay - delay) / delay
    energy_err = (est.match_energy - energy) / energy
    print(f"\nCAM match: tool {est.match_delay * 1e12:.0f} ps / "
          f"{est.match_energy * 1e12:.3f} pJ vs reference "
          f"{delay * 1e12:.0f} ps / {energy * 1e12:.3f} pJ "
          f"({delay_err:+.1%} / {energy_err:+.1%})")
    assert abs(delay_err) < 0.15
    assert abs(energy_err) < 0.20


def test_benchmark_cam_estimation(benchmark, tech):
    compiled = compile_brick(cam_brick(16, 10), tech)
    est = benchmark(lambda: estimate_brick(compiled, tech))
    assert est.match_delay is not None

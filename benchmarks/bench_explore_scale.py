"""Benchmark: the sharded million-point design-space explorer.

Prices 10^3 / 10^4 / 10^5-point lattices through the redesigned
:class:`repro.explore.SweepEngine` in sharded mode and compares against
the pre-redesign path (the materialize-every-point grid executor the
``sweep_partitions`` shim still rides), emitting
``BENCH_explore_scale.json``.

Two claims are asserted machine-readably:

* throughput — the 100k-point sharded sweep must run at >= 10x the
  points/s the legacy path achieves on its 1k-point ceiling, while
  holding only frontier + top-K in memory;
* resumability — a killed-then-resumed sweep reproduces the
  uninterrupted frontier byte for byte.
"""

import time

from bench_util import emit_bench_json, print_table
from repro.explore import SweepEngine
from repro.perf.cache import CharacterizationCache
from repro.session import Session

#: Axis recipes sized so the divisibility filter prunes nothing
#: (total_words are multiples of 64, every brick width divides 64).
_BRICK_WORDS = (4, 8, 16, 32, 64)


def _space_kwargs(n_total_words, n_bits):
    return dict(
        total_words_options=tuple(64 * k
                                  for k in range(1, n_total_words + 1)),
        bits_options=tuple(range(2, 2 + n_bits)),
        brick_words_options=_BRICK_WORDS)


#: (label, total_words count, bits count) -> 5 * tw * bits points.
_SIZES = (
    ("1k", 13, 16),      # 1040 points
    ("10k", 64, 32),     # 10240 points
    ("100k", 640, 32),   # 102400 points
)


def _engine(tech, mode, **kwargs):
    session = Session(tech, jobs=1, cache=CharacterizationCache())
    return SweepEngine(session, mode=mode, shard_size=8192, **kwargs)


def test_explore_scale_throughput_json(benchmark, tech):
    sections = {}
    rows = []

    # Pre-redesign baseline: the legacy grid executor materializes a
    # SweepPoint per lattice point; 1k is its comfortable ceiling.
    legacy_kwargs = _space_kwargs(13, 16)
    session = Session(tech, jobs=1, cache=CharacterizationCache())
    start = time.perf_counter()
    legacy = session.sweep_partitions(**legacy_kwargs)
    legacy_s = time.perf_counter() - start
    legacy_pps = len(legacy.points) / legacy_s
    sections["legacy_1k"] = {
        "n_points": len(legacy.points),
        "wall_clock_s": legacy_s,
        "points_per_s": legacy_pps,
    }
    rows.append(("legacy 1k", len(legacy.points), f"{legacy_s:.3f}",
                 f"{legacy_pps:.0f}", "1.0x"))

    for label, n_tw, n_bits in _SIZES:
        engine = _engine(tech, "sharded", **_space_kwargs(n_tw,
                                                          n_bits))
        start = time.perf_counter()
        result = engine.run(resume=False)
        elapsed = time.perf_counter() - start
        pps = result.n_priced / elapsed
        retained = len(result.frontier) + len(result.top)
        assert result.points is None  # bounded memory: survivors only
        sections[label] = {
            "n_points": result.n_points,
            "n_priced": result.n_priced,
            "shards": result.shards_total,
            "wall_clock_s": elapsed,
            "points_per_s": pps,
            "retained_points": retained,
            "frontier_size": len(result.frontier),
            "speedup_vs_legacy_1k": pps / legacy_pps,
        }
        rows.append((f"sharded {label}", result.n_points,
                     f"{elapsed:.3f}", f"{pps:.0f}",
                     f"{pps / legacy_pps:.1f}x"))

    print_table(
        "Sharded design-space exploration throughput",
        ("path", "points", "wall[s]", "points/s",
         "vs legacy 1k"),
        rows)
    emit_bench_json("explore_scale", {
        "paths": sections,
        "shard_size": 8192,
        "objectives": ["read_delay", "read_energy", "area_um2"],
    })
    speedup = sections["100k"]["speedup_vs_legacy_1k"]
    assert speedup >= 10.0, (
        f"sharded 100k sweep only {speedup:.1f}x the legacy "
        f"1k-point path")
    benchmark.pedantic(
        lambda: _engine(tech, "sharded",
                        **_space_kwargs(13, 16)).run(resume=False),
        rounds=3, iterations=1)


def test_killed_sweep_resumes_byte_identical(tech):
    """Kill a 10k sweep mid-flight; the resumed frontier must match the
    uninterrupted run byte for byte."""
    kwargs = dict(_space_kwargs(64, 32), shard_size=1024)
    session = Session(tech, jobs=1, cache=CharacterizationCache())
    golden = SweepEngine(session, mode="sharded", **kwargs).run()

    cache = CharacterizationCache()

    class Killed(Exception):
        pass

    def killer(done, total, shard):
        if done >= total // 2:
            raise Killed()

    killed_session = Session(tech, jobs=1, cache=cache)
    try:
        SweepEngine(killed_session, mode="sharded",
                    **kwargs).run(progress=killer)
        raise AssertionError("sweep was not killed")
    except Killed:
        pass
    resumed = SweepEngine(Session(tech, jobs=1, cache=cache),
                          mode="sharded", **kwargs).run()
    assert resumed.resumed_shards >= 1
    assert resumed.frontier_json() == golden.frontier_json()

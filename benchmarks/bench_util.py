"""Shared rendering + reporting helpers for the benchmark harnesses."""

import json
import os
import tempfile


def print_table(title, header, rows):
    """Uniform table rendering for the reproduced figures/tables."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def emit_bench_json(name, payload, directory=None):
    """Write ``BENCH_<name>.json`` atomically; returns the path.

    The JSON artifacts are the machine-readable side of the benchmark
    suite: each run overwrites the file in the repo root (default) so
    the perf trajectory — e.g. cold vs warm-cache wall clock — can be
    diffed and tracked across PRs.
    """
    if directory is None:
        directory = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
    path = os.path.join(directory, f"BENCH_{name}.json")
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    print(f"\nwrote {path}")
    return path

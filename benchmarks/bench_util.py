"""Shared rendering helpers for the benchmark harnesses."""


def print_table(title, header, rows):
    """Uniform table rendering for the reproduced figures/tables."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

"""Fig. 1: printability of logic next to bitcell arrays.

The paper's SEM study shows (a) bitcells print cleanly, (b) conventional
standard cells next to bitcells create lithographic hotspots, (c)
pattern-construct standard cells next to bitcells print cleanly.  We
reproduce the claim as hotspot counts / printability scores under the
restrictive-patterning rule set, plus the layout-level guarantee: every
generated brick layout is hotspot-free.
"""

import pytest

from bench_util import print_table
from repro.bricks import compile_brick, generate_layout, sram_brick
from repro.tech import (
    PatternRuleSet,
    find_hotspots,
    printability_score,
    scenario_bitcell_array,
    scenario_conventional_next_to_bitcells,
    scenario_regular_next_to_bitcells,
)


@pytest.fixture(scope="module")
def fig1():
    scenarios = {
        "1a bitcells only": scenario_bitcell_array(rows=16, cols=16),
        "1b conventional logic": scenario_conventional_next_to_bitcells(
            rows=16, array_cols=8, logic_cols=8),
        "1c regular logic": scenario_regular_next_to_bitcells(
            rows=16, array_cols=8, logic_cols=8),
    }
    rows = []
    for name, grid in scenarios.items():
        hotspots = find_hotspots(grid, PatternRuleSet.default())
        rows.append({
            "panel": name,
            "hotspots": len(hotspots),
            "printability": printability_score(grid),
        })
    return rows


def test_fig1_report_and_ordering(benchmark, fig1):
    benchmark.pedantic(lambda: fig1, rounds=1, iterations=1)
    print_table(
        "Fig. 1 — Printability of logic next to bitcell arrays",
        ("panel", "hotspots", "printability"),
        [(r["panel"], r["hotspots"], f"{r['printability']:.3f}")
         for r in fig1])
    by_panel = {r["panel"][:2]: r for r in fig1}
    assert by_panel["1a"]["hotspots"] == 0
    assert by_panel["1b"]["hotspots"] > 0
    assert by_panel["1c"]["hotspots"] == 0
    assert by_panel["1b"]["printability"] < 1.0
    assert by_panel["1a"]["printability"] == 1.0
    assert by_panel["1c"]["printability"] == 1.0


def test_generated_brick_layouts_are_pattern_legal(benchmark, tech):
    """The methodology's layout-level guarantee, checked on a spread of
    brick geometries."""

    def kernel():
        results = []
        for words, bits in [(4, 4), (16, 10), (32, 12), (13, 7)]:
            compiled = compile_brick(sram_brick(words, bits), tech)
            layout = generate_layout(compiled, tech)
            results.append(len(find_hotspots(layout.pattern_grid)))
        return results

    hotspot_counts = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert all(count == 0 for count in hotspot_counts)


def test_benchmark_hotspot_checker(benchmark):
    """Throughput of the pattern checker on a large grid."""
    grid = scenario_conventional_next_to_bitcells(
        rows=64, array_cols=32, logic_cols=32)

    def kernel():
        return len(find_hotspots(grid))

    count = benchmark(kernel)
    assert count == 64  # one hotspot per boundary row

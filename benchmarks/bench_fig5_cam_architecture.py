"""Fig. 5: the CAM-based SpGEMM architecture.

Exercises the silicon's geometry — 32 horizontal CAMs of 16x10 bit index
CAM + value SRAM, one 32-entry vertical CAM — at three levels:

* micro-architecture (single-cycle match/insert/update, capacity spill),
* gate level (the RTL CAM bank built from a compiled CAM brick),
* system level (the cycle-level accelerator streaming a sub-blocked
  matrix product through the structure).
"""


from bench_util import print_table
from repro.bricks import cam_brick, generate_brick_library, \
    single_partition
from repro.rtl import LogicSimulator, build_cam, elaborate
from repro.spgemm import (
    CAMGeometry,
    CAMSpGEMMAccelerator,
    HorizontalCAM,
    VerticalCAM,
    erdos_renyi,
)


def test_fig5_geometry_is_the_papers(benchmark):
    geometry = benchmark.pedantic(CAMGeometry, rounds=1, iterations=1)
    # "row index and data array sizes are chosen as 16x10bits, and
    # column number N for sub-blocks is chosen as 32".
    assert geometry.n_hcams == 32
    assert geometry.entries == 16
    assert geometry.index_bits == 10
    assert geometry.data_bits == 10


def test_fig5_horizontal_cam_single_cycle_semantics(benchmark):
    """Each streamed element resolves in one match: hit -> multiply-add,
    miss -> new entry (the architecture's core trick)."""

    def kernel():
        hcam = HorizontalCAM(CAMGeometry())
        hcam.bind(7)
        outcomes = []
        outcomes.append(hcam.accumulate(3, 1.5))   # new entry
        outcomes.append(hcam.accumulate(3, 2.0))   # multiply-add
        outcomes.append(hcam.accumulate(9, 1.0))   # new entry
        return outcomes, hcam.drain()

    outcomes, drained = benchmark.pedantic(kernel, rounds=1,
                                           iterations=1)
    assert outcomes == ["insert", "update", "insert"]
    assert drained == [(3, 3.5), (9, 1.0)]


def test_fig5_vertical_cam_activates_hcams(benchmark):
    def kernel():
        geometry = CAMGeometry()
        vcam = VerticalCAM(geometry)
        for slot in range(geometry.n_hcams):
            vcam.bind(slot, 100 + slot)
        return [vcam.match(100 + s) for s in range(geometry.n_hcams)]

    slots = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert slots == list(range(32))


def test_fig5_gate_level_cam_bank(benchmark, tech, stdlib):
    """The same structure synthesized from a compiled CAM brick."""
    config = single_partition(cam_brick(16, 10), 16)
    bricks, _ = generate_brick_library(
        [(config.brick, config.stack)], tech)
    library = stdlib.merged_with(bricks)
    module = build_cam(config)

    def kernel():
        sim = LogicSimulator(elaborate(module, library))
        for addr, key in enumerate([17, 513, 17, 900]):
            sim.set_input("waddr", addr)
            sim.set_input("wdata", key)
            sim.set_input("we", 1)
            sim.set_input("key", 0)
            sim.clock()
        sim.set_input("we", 0)
        sim.set_input("key", 17)
        sim.clock()
        return sim.get_output("ml"), sim.get_output("hit")

    ml, hit = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert ml & 0b1111 == 0b0101
    assert hit == 1


def test_fig5_system_level_event_profile(benchmark):
    """Stream a product through the full architecture and report the
    event mix the energy model consumes."""
    a = erdos_renyi(64, 0.12, seed=21)
    b = erdos_renyi(64, 0.12, seed=22)
    accelerator = CAMSpGEMMAccelerator()

    run = benchmark.pedantic(lambda: accelerator.simulate(a, b),
                             rounds=1, iterations=1)
    events = run.events
    print_table(
        "Fig. 5 — CAM-SpGEMM event profile (64x64 ER, d=0.12)",
        ("event", "count"),
        sorted(events.items()))
    # Every streamed element produces exactly one HCAM match and one MAC.
    assert events["hcam_match"] == events["mac"]
    assert events["vcam_match"] == events["hcam_match"]
    # Updates + inserts + spills partition the element stream.
    assert events["hcam_update"] + events["hcam_insert"] + \
        events["hcam_flush"] == events["hcam_match"]
    assert run.cycles >= events["hcam_match"]


def test_benchmark_match_throughput(benchmark):
    """Raw micro-architecture throughput: matches per second of the
    Python model (not the chip!)."""
    hcam = HorizontalCAM(CAMGeometry())
    hcam.bind(0)
    for row in range(0, 16):
        hcam.accumulate(row * 3, 1.0)

    def kernel():
        return hcam.match(21)

    assert benchmark(kernel) is True

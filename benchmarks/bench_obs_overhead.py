"""Benchmark: the observability plane must be (nearly) free.

Tracing and metrics ride inside every hot path — sweep points, cache
probes, parallel task groups — so their cost is paid per *operation*,
not per run.  This benchmark prices the same warm sweep kernel twice
on one shared warm cache:

* **off** — a session with no tracer and no metrics registry (every
  ``maybe_span`` short-circuits);
* **on** — a session with both attached, spans recorded for every
  stage/point and counters/histograms bumped throughout.

Emits ``BENCH_obs_overhead.json`` and asserts the instrumented path
costs at most :data:`OVERHEAD_CEILING` over the bare one — the floor
that keeps "always-on telemetry" an honest default for the serve
daemon.  Micro-costs (one span open/close, one telemetry record) are
reported alongside for the trajectory.
"""

import time

from bench_util import emit_bench_json, print_table
from repro.explore import SweepEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer
from repro.perf.cache import CharacterizationCache
from repro.session import Session
from repro.tech import cmos65

#: Max fractional slowdown tracing+metrics may add to a warm sweep.
OVERHEAD_CEILING = 0.05

#: A sharded sweep lattice: pricing is vectorized per shard, so spans
#: are per-shard/stage (the production granularity), not per point.
SWEEP_KWARGS = dict(total_words_options=tuple(2 ** i
                                              for i in range(7, 15)),
                    bits_options=tuple(range(4, 36, 2)),
                    brick_words_options=(8, 16, 32, 64, 128, 256),
                    mode="sharded", shard_size=2048)

ROUNDS = 12


def _span_cost_ns(n=20_000):
    tracer = Tracer()
    start = time.perf_counter()
    for i in range(n):
        span = tracer.open("point", kind="sweep_point", index=i)
        tracer.close(span)
    return (time.perf_counter() - start) / n * 1e9


def _telemetry_record_cost_ns(n=20_000):
    tele = Telemetry()
    start = time.perf_counter()
    for i in range(n):
        tele.record("sweep", (i % 97 + 1) * 1e-5)
    return (time.perf_counter() - start) / n * 1e9


def test_obs_overhead_json(benchmark):
    cache = CharacterizationCache()
    bare = Session(cmos65(), jobs=1, cache=cache)
    traced = Session(cmos65(), jobs=1, cache=cache,
                     tracer=Tracer(), metrics=MetricsRegistry())

    def kernel(session):
        # resume=False re-prices every shard from the warm estimate
        # cache — real vectorized work per run, not a checkpoint load.
        return SweepEngine(session, **SWEEP_KWARGS).run(resume=False)

    # One cold pass fills the shared characterization cache; both
    # timed paths then pay identical warm costs and differ only in
    # the instrumentation.
    result = kernel(bare)
    kernel(traced)

    def measure():
        # Interleaved best-of: both paths sample the same machine
        # weather, so the ratio is robust to background drift.
        off_s = on_s = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            kernel(bare)
            off_s = min(off_s, time.perf_counter() - start)
            start = time.perf_counter()
            kernel(traced)
            on_s = min(on_s, time.perf_counter() - start)
        return off_s, on_s

    off_s, on_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = on_s / off_s - 1.0
    span_ns = _span_cost_ns()
    record_ns = _telemetry_record_cost_ns()

    print_table(
        "Observability overhead — warm sweep, tracing+metrics on/off",
        ("path", "best wall", "overhead"),
        [("off (bare session)", f"{off_s * 1e3:.2f}ms", "-"),
         ("on (tracer+metrics)", f"{on_s * 1e3:.2f}ms",
          f"{overhead * 100:+.1f}%"),
         ("one span open+close", f"{span_ns:.0f}ns", "-"),
         ("one telemetry record", f"{record_ns:.0f}ns", "-")])

    emit_bench_json("obs_overhead", {
        "sweep_points": result.n_priced,
        "sweep_shards": result.shards_total,
        "sweep_warm_off_s": off_s,
        "sweep_warm_on_s": on_s,
        "overhead_fraction": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "span_open_close_ns": span_ns,
        "telemetry_record_ns": record_ns,
        "spans_recorded": len(traced.tracer.spans),
    })
    assert overhead <= OVERHEAD_CEILING, (
        f"tracing+metrics cost {overhead * 100:.1f}% on the warm "
        f"sweep (ceiling {OVERHEAD_CEILING * 100:.0f}%)")

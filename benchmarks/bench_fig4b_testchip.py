"""Fig. 4b: chip measurements vs estimated-library simulations, A-E.

The paper overlays multi-chip silicon measurements (mean with min/max
bars) on best/nominal/worst simulations driven by the generated brick
libraries, for the five test-chip SRAM configurations of Fig. 4a, and
draws four conclusions:

1. performance drops monotonically A -> B -> C -> D,
2. partitioning makes E faster than D,
3. E is still slower than B ("slower decoder and global signal routing"),
4. E consumes less energy than D (bank enable-gating) at more area.

Chip measurements here are the detailed model evaluated per sampled die
(process variation the libraries never saw); simulations are the flow at
the corner technologies.  All four conclusions plus the tracking claim
are asserted.
"""

import pytest

from bench_util import print_table
from repro.silicon import measure_chips, run_config_flow, \
    simulate_corners
from repro.units import MHZ, PJ

_CONFIGS = ("A", "B", "C", "D", "E")
_N_CHIPS = 4
_ANNEAL = 1500


@pytest.fixture(scope="module")
def fig4b(session):
    measured = measure_chips(_CONFIGS, n_chips=_N_CHIPS,
                             anneal_moves=_ANNEAL, session=session)
    simulated = simulate_corners(_CONFIGS, anneal_moves=_ANNEAL,
                                 session=session)
    return measured, simulated


def test_fig4b_report(benchmark, fig4b):
    measured, simulated = fig4b
    benchmark.pedantic(lambda: fig4b, rounds=1, iterations=1)
    rows = []
    for name in _CONFIGS:
        m = measured[name]
        s = simulated[name]
        rows.append((
            name,
            f"{m.mean_fmax / MHZ:.0f}",
            f"[{m.min_fmax / MHZ:.0f}..{m.max_fmax / MHZ:.0f}]",
            f"{s.fmax_worst / MHZ:.0f}",
            f"{s.fmax_nominal / MHZ:.0f}",
            f"{s.fmax_best / MHZ:.0f}",
            f"{m.mean_energy / PJ:.2f}",
            f"{s.energy_nominal / PJ:.2f}",
        ))
    print_table(
        "Fig. 4b — Measured chips vs estimated-library simulations",
        ("cfg", "meas[MHz]", "spread", "simW", "simN", "simB",
         "measE[pJ]", "simE[pJ]"),
        rows)


def test_fig4b_performance_ordering(benchmark, fig4b):
    measured, _ = fig4b
    benchmark.pedantic(lambda: measured, rounds=1, iterations=1)
    fmax = {name: measured[name].mean_fmax for name in _CONFIGS}
    # 1. A > B > C > D.
    assert fmax["A"] > fmax["B"] > fmax["C"] > fmax["D"]
    # 2. "partitioning results in faster performance in E".
    assert fmax["E"] > fmax["D"]
    # 3. "E is still slower than B".
    assert fmax["E"] < fmax["B"]


def test_fig4b_energy_and_area_tradeoff(benchmark, fig4b, session):
    measured, _ = fig4b
    benchmark.pedantic(lambda: measured, rounds=1, iterations=1)
    # 4. "E consume less energy compared to D ... traded off with larger
    # area consumption".
    assert measured["E"].mean_energy < measured["D"].mean_energy
    flow_d = run_config_flow("D", with_power=False,
                             anneal_moves=_ANNEAL, session=session)
    flow_e = run_config_flow("E", with_power=False,
                             anneal_moves=_ANNEAL, session=session)
    # Partitioning fragments the floorplan (four macros plus their
    # spacing and duplicated periphery) — the "larger area consumption
    # that inherently comes from partitioning".
    print(f"\narea D = {flow_d.area_um2:.0f} um^2, "
          f"E = {flow_e.area_um2:.0f} um^2")
    assert flow_e.area_um2 > flow_d.area_um2


def test_fig4b_simulations_track_measurements(benchmark, fig4b):
    """The validation claim: estimated-library simulations 'capture the
    trend of chip results over the range of different configurations
    within a small error rate'."""
    measured, simulated = fig4b
    benchmark.pedantic(lambda: simulated, rounds=1, iterations=1)
    for name in _CONFIGS:
        m, s = measured[name], simulated[name]
        # Nominal simulation within 25 % of the multi-chip mean, and the
        # corner bracket ordered around it.
        assert abs(s.fmax_nominal - m.mean_fmax) / m.mean_fmax < 0.25
        assert s.fmax_worst < s.fmax_nominal < s.fmax_best
    # Trend correlation: config ranking identical between the two sides.
    meas_rank = sorted(_CONFIGS,
                       key=lambda n: measured[n].mean_fmax)
    sim_rank = sorted(_CONFIGS,
                      key=lambda n: simulated[n].fmax_nominal)
    assert meas_rank == sim_rank


def test_fig4b_energy_grows_with_size(benchmark, fig4b):
    """Paper: 'As SRAM size increases for a single partition (from A to
    D), performance drops and energy increases as it is expected.'"""
    measured, _ = fig4b
    benchmark.pedantic(lambda: measured, rounds=1, iterations=1)
    energy = {name: measured[name].mean_energy for name in _CONFIGS}
    assert energy["A"] < energy["B"] < energy["C"] < energy["D"]
